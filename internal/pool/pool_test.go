package pool

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/atomicx"
)

// tnode is the test node: a stamp word for ownership checks plus the
// pool link word.
type tnode struct {
	stamp atomic.Uint64
	next  atomic.Uint64
}

func (n *tnode) PoolNext() *atomic.Uint64 { return &n.next }

type tpool = Pool[tnode, *tnode]

func newTestPool(cfg Config) *tpool { return New[tnode, *tnode](cfg) }

func mustAlloc(t *testing.T, p *tpool, stripe int) uint64 {
	t.Helper()
	idx, err := p.Alloc(stripe)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// forEachAlgo runs a subtest per recycling backend; behaviour-shared
// tests go through it, backend-specific ones (LIFO order, migration)
// pin their algo.
func forEachAlgo(t *testing.T, f func(t *testing.T, algo Algo)) {
	for _, algo := range []Algo{AlgoFreelist, AlgoConstTime} {
		t.Run(algo.String(), func(t *testing.T) { f(t, algo) })
	}
}

func TestParseAlgo(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Algo
	}{{"", AlgoFreelist}, {"freelist", AlgoFreelist}, {"consttime", AlgoConstTime}} {
		got, err := ParseAlgo(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseAlgo(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseAlgo("bogus"); err == nil {
		t.Error("ParseAlgo(bogus) succeeded")
	}
	if AlgoFreelist.String() != "freelist" || AlgoConstTime.String() != "consttime" {
		t.Error("Algo.String round-trip broken")
	}
}

func TestAllocDistinctAndRecycled(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		p := newTestPool(Config{ChunkLog2: 3, MaxChunks: 16, Algo: algo})
		const n = 20 // crosses chunk boundaries (chunk = 8)
		seen := map[uint64]bool{}
		idxs := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			idx := mustAlloc(t, p, 0)
			if idx == 0 {
				t.Fatal("Alloc returned reserved index 0")
			}
			if idx < p.First() || idx >= p.Limit() {
				t.Fatalf("index %d outside [%d, %d)", idx, p.First(), p.Limit())
			}
			if seen[idx] {
				t.Fatalf("index %d allocated twice", idx)
			}
			seen[idx] = true
			idxs = append(idxs, idx)
		}
		if got := p.Allocated() - p.Retired(); got != n {
			t.Fatalf("live = %d, want %d", got, n)
		}
		for _, idx := range idxs {
			p.Retire(0, idx)
		}
		limit := p.Limit()
		// Steady-state churn must recycle, not grow.
		for i := 0; i < 10*n; i++ {
			p.Retire(0, mustAlloc(t, p, 0))
		}
		if p.Limit() != limit {
			t.Fatalf("pool grew %d -> %d under steady churn", limit, p.Limit())
		}
	})
}

func TestErrExhaustedTypedAndStable(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		// MaxChunks=2 with the first chunk reserved leaves exactly one
		// usable chunk of 4 nodes.
		p := newTestPool(Config{ChunkLog2: 2, MaxChunks: 2, Algo: algo})
		for i := 0; i < 4; i++ {
			mustAlloc(t, p, 0)
		}
		for i := 0; i < 3; i++ {
			if _, err := p.Alloc(0); !errors.Is(err, ErrExhausted) {
				t.Fatalf("attempt %d: err = %v, want wrapped ErrExhausted", i, err)
			}
		}
		if got := p.Limit(); got != 8 {
			t.Fatalf("exhaustion advanced the bump counter: Limit = %d, want 8", got)
		}
		if got, want := p.Allocated(), p.Limit()-p.First(); got != want {
			t.Fatalf("after exhaustion Allocated = %d, Limit-First = %d", got, want)
		}
		// Retiring a node makes the pool usable again.
		p.Retire(0, 4)
		if idx := mustAlloc(t, p, 0); idx != 4 {
			t.Fatalf("recycled index = %d, want 4", idx)
		}
	})
}

func TestRetireChain(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		p := newTestPool(Config{ChunkLog2: 4, MaxChunks: 4, Algo: algo})
		a, b, c := mustAlloc(t, p, 0), mustAlloc(t, p, 0), mustAlloc(t, p, 0)
		// Build the chain a -> b -> c by hand, preserving each link's tag.
		link := func(from, to uint64) {
			w := p.Get(from).PoolNext()
			old := atomicx.UnpackTagged(w.Load())
			w.Store(atomicx.Tagged{Idx: to, Tag: old.Tag + 1}.Pack())
		}
		link(a, b)
		link(b, c)
		before := p.Retired()
		p.RetireChain(0, a, c, 3)
		if got := p.Retired(); got != before+3 {
			t.Fatalf("retired %d -> %d, want +3", before, got)
		}
		// All three come back exactly once (the freelist backend
		// additionally guarantees LIFO, checked below).
		got := []uint64{mustAlloc(t, p, 0), mustAlloc(t, p, 0), mustAlloc(t, p, 0)}
		seen := map[uint64]bool{}
		for _, idx := range got {
			if seen[idx] {
				t.Fatalf("index %d served twice after RetireChain", idx)
			}
			seen[idx] = true
		}
		if !seen[a] || !seen[b] || !seen[c] {
			t.Fatalf("RetireChain lost nodes: got %v, want {%d %d %d}", got, a, b, c)
		}
		if algo == AlgoFreelist {
			// LIFO: the chain head comes back first.
			for i, want := range []uint64{a, b, c} {
				if got[i] != want {
					t.Fatalf("got %v, want LIFO [%d %d %d]", got, a, b, c)
				}
			}
		}
	})
}

func TestAccountingInvariant(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		// allocated == live + retired at every quiescent point, across all
		// stripes, with FreeIndices agreeing exactly.
		p := newTestPool(Config{ChunkLog2: 3, MaxChunks: 1 << 10, Stripes: 4, Algo: algo})
		live := map[uint64]bool{}
		rng := uint64(1)
		next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng >> 33 }
		for step := 0; step < 5000; step++ {
			if next()%2 == 0 || len(live) == 0 {
				idx := mustAlloc(t, p, int(next()%7))
				if live[idx] {
					t.Fatalf("step %d: index %d double-allocated", step, idx)
				}
				live[idx] = true
			} else {
				for idx := range live {
					delete(live, idx)
					p.Retire(int(next()%7), idx)
					break
				}
			}
		}
		if got, want := p.Allocated(), uint64(len(live))+p.Retired(); got != want {
			t.Fatalf("allocated %d != live %d + retired %d", got, len(live), p.Retired())
		}
		free := p.FreeIndices()
		if uint64(len(free)) != p.Retired() {
			t.Fatalf("freelists hold %d, retired counter %d", len(free), p.Retired())
		}
		for idx := range live {
			if free[idx] {
				t.Fatalf("live index %d found on a freelist", idx)
			}
		}
		var stripeSum uint64
		for _, n := range p.StripeFree() {
			stripeSum += n
		}
		if stripeSum != p.Retired() {
			t.Fatalf("stripe walk sums to %d, retired counter %d", stripeSum, p.Retired())
		}
	})
}

func TestStripeMigration(t *testing.T) {
	p := newTestPool(Config{ChunkLog2: 3, MaxChunks: 16, Stripes: 4})
	// Stripe 2's first alloc grows a chunk; the 7 leftovers land on
	// stripe 2.
	first := mustAlloc(t, p, 2)
	limit := p.Limit()
	if free := p.StripeFree(); free[2] != 7 {
		t.Fatalf("stripe 2 free = %v, want 7 on stripe 2", free)
	}
	// A dry sibling must migrate stripe 2's chain, not grow.
	got := mustAlloc(t, p, 0)
	if p.Limit() != limit {
		t.Fatalf("migration path grew the pool (%d -> %d)", limit, p.Limit())
	}
	if got == first {
		t.Fatalf("migrated alloc returned live index %d", got)
	}
	free := p.StripeFree()
	if free[2] != 0 || free[0] != 6 {
		t.Fatalf("after migration StripeFree = %v, want [6 0 0 0]", free)
	}
	if got, want := p.Allocated()-p.Retired(), uint64(2); got != want {
		t.Fatalf("live = %d, want %d", got, want)
	}
}

func TestMigrationInterleave(t *testing.T) {
	// Force the worst interleaving: while a migration holds a detached
	// chain (between the victim CAS and the local splice), the victim
	// stripe refills and a third stripe allocates. No index may be
	// served twice.
	p := newTestPool(Config{ChunkLog2: 2, MaxChunks: 64, Stripes: 4})
	seed := make([]uint64, 0, 8)
	for i := 0; i < 8; i++ {
		seed = append(seed, mustAlloc(t, p, 1))
	}
	for _, idx := range seed {
		p.Retire(1, idx)
	}

	var hooked atomic.Bool
	var hookLocal, hookVictim int
	served := make(chan uint64, 4)
	migrateTestHook = func(local, victim int) {
		if !hooked.CompareAndSwap(false, true) {
			return // only instrument the outermost migration
		}
		hookLocal, hookVictim = local, victim
		// The chain is detached: the victim looks empty. Concurrent
		// allocs must either migrate elsewhere or grow — never see the
		// in-flight chain.
		idx, err := p.Alloc(victim)
		if err != nil {
			t.Error(err)
			return
		}
		served <- idx
	}
	defer func() { migrateTestHook = nil }()

	idx, err := p.Alloc(3) // dry stripe: must migrate from stripe 1
	if err != nil {
		t.Fatal(err)
	}
	served <- idx
	if !hooked.Load() {
		t.Fatal("migration hook never fired")
	}
	if hookLocal != 3 || hookVictim != 1 {
		t.Fatalf("migration %d<-%d, want 3<-1", hookLocal, hookVictim)
	}
	close(served)
	seen := map[uint64]bool{}
	for idx := range served {
		if seen[idx] {
			t.Fatalf("index %d served twice across the interleaving", idx)
		}
		seen[idx] = true
	}
	if got, want := p.Allocated(), uint64(len(seen))+p.Retired(); got != want {
		t.Fatalf("allocated %d != live %d + retired %d", got, len(seen), p.Retired())
	}
}

// TestABARecyclingFuzz hammers Alloc/Retire from many goroutines across
// stripes, stamping each node at allocation with a CAS from zero: if
// recycling ever handed one index to two owners, the loser's stamp CAS
// fails. Run with -race in CI; covers both backends (for the
// constant-time one this doubles as the batch claim/park/displacement
// race test — Stripes=4 with 8 goroutines keeps slots contended).
func TestABARecyclingFuzz(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		for _, stripes := range []int{1, 4} {
			p := newTestPool(Config{ChunkLog2: 4, MaxChunks: 1 << 10, Stripes: stripes, Algo: algo})
			const goroutines = 8
			iters := 20000
			if testing.Short() {
				iters = 2000
			}
			var wg sync.WaitGroup
			var doubles atomic.Int64
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g uint64) {
					defer wg.Done()
					held := make([]uint64, 0, 16)
					for i := 0; i < iters; i++ {
						idx, err := p.Alloc(int(g))
						if err != nil {
							t.Error(err)
							return
						}
						tag := g<<32 | uint64(i) | 1
						if !p.Get(idx).stamp.CompareAndSwap(0, tag) {
							doubles.Add(1)
							continue
						}
						held = append(held, idx)
						if len(held) == cap(held) || i%3 == 0 {
							// Release in bursts, sometimes to a sibling stripe,
							// to keep migration in play.
							for _, h := range held {
								p.Get(h).stamp.Store(0)
								p.Retire(int(g+uint64(len(held)))%4, h)
							}
							held = held[:0]
						}
					}
					for _, h := range held {
						p.Get(h).stamp.Store(0)
						p.Retire(int(g), h)
					}
				}(uint64(g))
			}
			wg.Wait()
			if n := doubles.Load(); n != 0 {
				t.Fatalf("stripes=%d: %d double allocations detected", stripes, n)
			}
			if got, want := p.Allocated(), p.Retired(); got != want {
				t.Fatalf("stripes=%d quiescent: allocated %d != retired %d (all nodes released)", stripes, got, want)
			}
			if free := p.FreeIndices(); uint64(len(free)) != p.Retired() {
				t.Fatalf("stripes=%d: freelists hold %d, retired counter %d", stripes, len(free), p.Retired())
			}
		}
	})
}

// TestExhaustionAccountingReconciliation is the regression test for
// the exhaustion-path accounting asymmetry: Allocated used to be a
// separate counter bumped after chunk publication, so a walker racing
// grow (or probing after ErrExhausted) could observe
// Allocated() < Limit()-First(), and StripeFree's walk bound could be
// one chunk short. Allocated is now derived from the bump counter;
// this churns both backends to exhaustion and back under -race while
// a walker asserts the identity continuously.
func TestExhaustionAccountingReconciliation(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		p := newTestPool(Config{ChunkLog2: 2, MaxChunks: 8, Stripes: 2, Algo: algo})
		stop := make(chan struct{})
		var wg sync.WaitGroup
		// Churners: drive to exhaustion, then release everything.
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				held := make([]uint64, 0, 32)
				for i := 0; ; i++ {
					select {
					case <-stop:
						for _, idx := range held {
							p.Retire(g, idx)
						}
						return
					default:
					}
					idx, err := p.Alloc(g)
					if err != nil {
						if !errors.Is(err, ErrExhausted) {
							t.Error(err)
							return
						}
						for _, h := range held {
							p.Retire(g+i, h)
						}
						held = held[:0]
						continue
					}
					held = append(held, idx)
				}
			}(g)
		}
		// Walker: the identity must hold at every instant, TryGet must
		// stay nil-or-valid across [First, Limit), and the stripe walk
		// must never loop past its bound.
		for i := 0; i < 2000; i++ {
			if got, want := p.Allocated(), p.Limit()-p.First(); got != want {
				t.Errorf("iteration %d: Allocated %d != Limit-First %d", i, got, want)
				break
			}
			limit := p.Limit()
			for idx := p.First(); idx < limit; idx++ {
				p.TryGet(idx) // must not panic, nil is fine mid-publication
			}
			var sum uint64
			for _, n := range p.StripeFree() {
				sum += n
			}
			if sum > p.Allocated()*2 {
				t.Errorf("iteration %d: stripe walk unbounded: %d", i, sum)
				break
			}
		}
		close(stop)
		wg.Wait()
		// Quiescent: exact reconciliation, including after the pool hit
		// ErrExhausted many times.
		if got, want := p.Allocated(), p.Limit()-p.First(); got != want {
			t.Fatalf("quiescent: Allocated %d != Limit-First %d", got, want)
		}
		if got, want := p.Allocated(), p.Retired(); got != want {
			t.Fatalf("quiescent: allocated %d != retired %d", got, want)
		}
		if free := p.FreeIndices(); uint64(len(free)) != p.Retired() {
			t.Fatalf("quiescent: freelists hold %d, retired %d", len(free), p.Retired())
		}
	})
}

// BenchmarkPoolAllocRetire pins backend regressions without the full
// harness: per backend × stripes {1, P}.
func BenchmarkPoolAllocRetire(b *testing.B) {
	procs := runtime.GOMAXPROCS(0)
	for _, algo := range []Algo{AlgoFreelist, AlgoConstTime} {
		for _, stripes := range []int{1, procs} {
			b.Run("algo="+algo.String()+"/stripes="+itoa(stripes), func(b *testing.B) {
				p := newTestPool(Config{ChunkLog2: 6, MaxChunks: 1 << 12, Stripes: stripes, Algo: algo})
				var id atomic.Int64
				b.RunParallel(func(pb *testing.PB) {
					g := int(id.Add(1))
					for pb.Next() {
						idx, err := p.Alloc(g)
						if err != nil {
							b.Fatal(err)
						}
						p.Retire(g, idx)
					}
				})
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestTryGetUnpublishedChunk: indices whose chunk has never been
// carved must return nil from TryGet (the walker-safe accessor), while
// allocated indices resolve to the same node as Get.
func TestTryGetUnpublishedChunk(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		p := newTestPool(Config{ChunkLog2: 3, MaxChunks: 16, Algo: algo})
		idx := mustAlloc(t, p, 0)
		if p.TryGet(idx) == nil {
			t.Fatal("TryGet returned nil for an allocated index")
		}
		if p.TryGet(idx) != p.Get(idx) {
			t.Error("TryGet and Get disagree on an allocated index")
		}
		// An index two chunks past the bump counter lives in a chunk that
		// was never carved: Get would dereference a nil chunk pointer,
		// TryGet reports it as absent.
		if got := p.TryGet(p.Limit() + 2*8); got != nil {
			t.Errorf("TryGet(uncarved chunk) = %v, want nil", got)
		}
	})
}
