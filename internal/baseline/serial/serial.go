// Package serial implements the single-global-lock baseline allocator,
// standing in for the default AIX 5.1 libc malloc of the paper's
// evaluation (§4): a conventional sequential boundary-tag allocator
// (best-fit over a size-keyed tree, in the spirit of the classic AIX
// Cartesian-tree malloc) made MT-safe by wrapping every operation in
// one mutex.
//
// Like the real libc baseline it has reasonable single-thread
// behaviour and collapses completely under concurrent load — the paper
// measures libc at 331x slower than the lock-free allocator at 16
// processors.
package serial

import (
	"sync"

	"repro/internal/chunkheap"
	"repro/internal/mem"
)

// largeThresholdWords is the direct-mmap threshold (32 KiB payload),
// comparable to dlmalloc's.
const largeThresholdWords = 4096

// Config configures the serial allocator.
type Config struct {
	HeapConfig mem.Config
	// Heap supplies an existing address space; if nil a new one is
	// created.
	Heap *mem.Heap
}

// Allocator is the global-lock baseline. All methods are safe for
// concurrent use (they serialize on one mutex).
type Allocator struct {
	heap *mem.Heap

	mu sync.Mutex
	ch *chunkheap.Heap

	mallocs uint64
	frees   uint64
}

// New constructs a serial allocator.
func New(cfg Config) *Allocator {
	h := cfg.Heap
	if h == nil {
		h = mem.NewHeap(cfg.HeapConfig)
	}
	return &Allocator{
		heap: h,
		ch:   chunkheap.New(h, 0, chunkheap.BestFitTree),
	}
}

// Name identifies the allocator in benchmark output.
func (a *Allocator) Name() string { return "serial" }

// Heap returns the backing address space.
func (a *Allocator) Heap() *mem.Heap { return a.heap }

// Thread returns a handle; all handles share the global lock.
func (a *Allocator) Thread() *Thread { return &Thread{a: a} }

// Thread is a per-goroutine handle (stateless for this allocator).
type Thread struct{ a *Allocator }

// Malloc allocates size payload bytes.
func (t *Thread) Malloc(size uint64) (mem.Ptr, error) {
	a := t.a
	words := (size + mem.WordBytes - 1) / mem.WordBytes
	if words == 0 {
		words = 1
	}
	if words >= largeThresholdWords {
		// The header records the rounded region size for the free path.
		return a.heap.LargeAlloc(size, chunkheap.MakeLargeHeader)
	}
	a.mu.Lock()
	a.mallocs++
	p, err := a.ch.Alloc(words)
	a.mu.Unlock()
	return p, err
}

// Free returns a block to the chunk heap.
func (t *Thread) Free(p mem.Ptr) {
	if p.IsNil() {
		return
	}
	a := t.a
	hdr := a.heap.Load(p - 1)
	if chunkheap.IsLargeHeader(hdr) {
		a.heap.LargeFree(p, chunkheap.LargeWords(hdr))
		return
	}
	a.mu.Lock()
	a.frees++
	a.ch.Free(p)
	a.mu.Unlock()
}

// UsableWords returns the payload words available in the block at p
// (the malloc_usable_size analogue).
func (t *Thread) UsableWords(p mem.Ptr) uint64 {
	return chunkheap.UsableWords(t.a.heap, p)
}

// Counts returns total small mallocs and frees performed.
func (a *Allocator) Counts() (mallocs, frees uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mallocs, a.frees
}
