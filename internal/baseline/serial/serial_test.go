package serial

import (
	"sync"
	"testing"

	"repro/internal/mem"
)

func newTest() *Allocator {
	return New(Config{HeapConfig: mem.Config{SegmentWordsLog2: 18, TotalWordsLog2: 28}})
}

func TestRoundTrip(t *testing.T) {
	a := newTest()
	th := a.Thread()
	p, err := th.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	a.Heap().Set(p, 99)
	th.Free(p)
	q, err := th.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if p != q {
		t.Errorf("freed block not reused: %v then %v", p, q)
	}
	th.Free(q)
}

func TestCounts(t *testing.T) {
	a := newTest()
	th := a.Thread()
	for i := 0; i < 10; i++ {
		p, err := th.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		th.Free(p)
	}
	m, f := a.Counts()
	if m != 10 || f != 10 {
		t.Errorf("counts = %d/%d, want 10/10", m, f)
	}
}

func TestCoalescingThroughGlobalLock(t *testing.T) {
	// Three adjacent blocks freed out of order must merge into a chunk
	// serving a larger request (best-fit tree policy).
	a := newTest()
	th := a.Thread()
	p1, _ := th.Malloc(80)
	p2, _ := th.Malloc(80)
	p3, _ := th.Malloc(80)
	guard, _ := th.Malloc(80)
	th.Free(p1)
	th.Free(p3)
	th.Free(p2)
	big, err := th.Malloc(250)
	if err != nil {
		t.Fatal(err)
	}
	if big != p1 {
		t.Errorf("merged chunk not reused: got %v want %v", big, p1)
	}
	th.Free(big)
	th.Free(guard)
}

func TestLargeBlocksAreRegions(t *testing.T) {
	a := newTest()
	th := a.Thread()
	p, err := th.Malloc(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	th.Free(p)
	s := a.Heap().Stats()
	if s.RegionFrees == 0 {
		t.Error("large block was not returned to the OS layer")
	}
}

func TestSerializedConcurrency(t *testing.T) {
	a := newTest()
	heap := a.Heap()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := a.Thread()
			var live []mem.Ptr
			for i := 0; i < 10000; i++ {
				if len(live) > 16 {
					th.Free(live[0])
					live = live[1:]
				}
				p, err := th.Malloc(8 + seed*8)
				if err != nil {
					t.Errorf("malloc: %v", err)
					return
				}
				heap.Set(p, seed)
				live = append(live, p)
			}
			for _, p := range live {
				if heap.Get(p) != seed {
					t.Error("corruption")
					return
				}
				th.Free(p)
			}
		}(uint64(g))
	}
	wg.Wait()
	m, f := a.Counts()
	if m != f {
		t.Errorf("mallocs %d != frees %d", m, f)
	}
}
