// Package ptmalloc implements a Ptmalloc-like multi-arena lock-based
// baseline allocator (Gloger's ptmalloc2, the glibc allocator), the
// second comparison point of the paper (§2.2).
//
// Faithful elements: ptmalloc2 is dlmalloc per arena — each arena is a
// boundary-tag chunk heap (internal/chunkheap with the FastBins
// policy) guarded by one mutex; the locking granularity is the arena;
// a thread remembers the arena it used in its last malloc and tries
// that one first; if an arena is found locked the thread tries the
// next, and if all arenas are locked it creates a new arena and adds
// it to the arena list; free returns the block to the arena it was
// originally allocated from (identified by the owner tag in the chunk
// header), acquiring that arena's lock. A malloc/free pair thus costs
// two lock acquisitions, matching the paper's latency analysis.
//
// Large blocks go straight to the OS layer without any arena lock, as
// ptmalloc mmaps large requests.
package ptmalloc

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/chunkheap"
	"repro/internal/mem"
)

// maxArenas bounds arena creation (ptmalloc2 limits arenas to a small
// multiple of the core count; the paper observed 22 arenas for 16
// threads under Larson).
const maxArenas = 256

// largeThresholdWords is the direct-mmap threshold (32 KiB payload).
const largeThresholdWords = 4096

// Config configures the allocator.
type Config struct {
	// Arenas is the initial arena count. 0 selects GOMAXPROCS.
	Arenas     int
	HeapConfig mem.Config
	Heap       *mem.Heap
}

type arena struct {
	mu sync.Mutex
	ch *chunkheap.Heap
	_  [4]uint64
}

// Allocator is the Ptmalloc-like baseline.
type Allocator struct {
	heap *mem.Heap

	arenas   atomic.Pointer[[]*arena] // append-only snapshot list
	arenasMu sync.Mutex

	nextThread atomic.Uint64
}

// New constructs the allocator.
func New(cfg Config) *Allocator {
	if cfg.Arenas <= 0 {
		cfg.Arenas = runtime.GOMAXPROCS(0)
	}
	if cfg.Arenas > maxArenas {
		cfg.Arenas = maxArenas
	}
	h := cfg.Heap
	if h == nil {
		if cfg.HeapConfig.Arenas == 0 {
			// One region arena per malloc arena (chunkheap i draws its
			// wilderness from region arena i via its owner tag).
			cfg.HeapConfig.Arenas = cfg.Arenas
		}
		h = mem.NewHeap(cfg.HeapConfig)
	}
	a := &Allocator{heap: h}
	arenas := make([]*arena, cfg.Arenas)
	for i := range arenas {
		arenas[i] = &arena{ch: chunkheap.New(h, uint64(i), chunkheap.FastBins)}
	}
	a.arenas.Store(&arenas)
	return a
}

// Name identifies the allocator in benchmark output.
func (a *Allocator) Name() string { return "ptmalloc" }

// Heap returns the backing address space.
func (a *Allocator) Heap() *mem.Heap { return a.heap }

// ArenaCount returns the current number of arenas (grows under
// contention, as the paper observed for Larson).
func (a *Allocator) ArenaCount() int { return len(*a.arenas.Load()) }

// Thread registers a worker and returns its handle.
func (a *Allocator) Thread() *Thread {
	t := &Thread{a: a}
	t.last = int(a.nextThread.Add(1)-1) % len(*a.arenas.Load())
	return t
}

// Thread is a per-goroutine handle carrying the thread-specific
// last-used-arena hint.
type Thread struct {
	a    *Allocator
	last int
}

// Malloc allocates size payload bytes.
func (t *Thread) Malloc(size uint64) (mem.Ptr, error) {
	a := t.a
	words := (size + mem.WordBytes - 1) / mem.WordBytes
	if words == 0 {
		words = 1
	}
	if words >= largeThresholdWords {
		// Route through the last-used arena's region shard; the header
		// records the rounded region size for the free path.
		return a.heap.Arena(t.last).LargeAlloc(size, chunkheap.MakeLargeHeader)
	}
	arenas := *a.arenas.Load()
	// Try the last-used arena first, then the rest, with trylock.
	n := len(arenas)
	for i := 0; i < n; i++ {
		ai := (t.last + i) % n
		ar := arenas[ai]
		if ar.mu.TryLock() {
			p, err := ar.ch.Alloc(words)
			ar.mu.Unlock()
			t.last = ai
			return p, err
		}
	}
	// All arenas locked: create a new arena (ptmalloc's arena_get2).
	ai, ar := a.addArena()
	ar.mu.Lock()
	p, err := ar.ch.Alloc(words)
	ar.mu.Unlock()
	t.last = ai
	return p, err
}

func (a *Allocator) addArena() (int, *arena) {
	a.arenasMu.Lock()
	old := *a.arenas.Load()
	if len(old) >= maxArenas {
		a.arenasMu.Unlock()
		// At the cap, fall back to blocking on an existing arena.
		i := len(old) - 1
		return i, old[i]
	}
	ar := &arena{ch: chunkheap.New(a.heap, uint64(len(old)), chunkheap.FastBins)}
	grown := make([]*arena, len(old)+1)
	copy(grown, old)
	grown[len(old)] = ar
	a.arenas.Store(&grown)
	a.arenasMu.Unlock()
	return len(grown) - 1, ar
}

// UsableWords returns the payload words available in the block at p
// (the malloc_usable_size analogue).
func (t *Thread) UsableWords(p mem.Ptr) uint64 {
	return chunkheap.UsableWords(t.a.heap, p)
}

// Free returns a block to its origin arena, acquiring that arena's
// lock (blocking, as in ptmalloc).
func (t *Thread) Free(p mem.Ptr) {
	if p.IsNil() {
		return
	}
	a := t.a
	hdr := a.heap.Load(p - 1)
	if chunkheap.IsLargeHeader(hdr) {
		a.heap.LargeFree(p, chunkheap.LargeWords(hdr))
		return
	}
	ai := chunkheap.Tag(a.heap, p)
	ar := (*a.arenas.Load())[ai]
	ar.mu.Lock()
	ar.ch.Free(p)
	ar.mu.Unlock()
}
