package ptmalloc

import (
	"sync"
	"testing"

	"repro/internal/chunkheap"
	"repro/internal/mem"
)

func newTest(arenas int) *Allocator {
	return New(Config{
		Arenas:     arenas,
		HeapConfig: mem.Config{SegmentWordsLog2: 18, TotalWordsLog2: 28},
	})
}

func TestRoundTrip(t *testing.T) {
	a := newTest(2)
	th := a.Thread()
	p, err := th.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	a.Heap().Set(p, 7)
	th.Free(p)
}

func TestFreeReturnsToOriginArena(t *testing.T) {
	a := newTest(4)
	// Threads 0 and 1 start on different arenas.
	t0 := a.Thread()
	t1 := a.Thread()
	p0, err := t0.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if got := chunkheap.Tag(a.Heap(), p0); got != uint64(t0.last) {
		t.Fatalf("block tagged arena %d, thread used arena %d", got, t0.last)
	}
	// t1 frees t0's block: it must land back in t0's arena, so t0 can
	// reuse it immediately.
	t1.Free(p0)
	p0b, err := t0.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if p0b != p0 {
		t.Errorf("block not reused from origin arena: %v then %v", p0, p0b)
	}
}

func TestArenaGrowthUnderLockPressure(t *testing.T) {
	a := newTest(1)
	if a.ArenaCount() != 1 {
		t.Fatal("want 1 initial arena")
	}
	// Hold the only arena's lock and malloc from another goroutine: a
	// new arena must be created (ptmalloc's arena_get2 behaviour).
	ar := (*a.arenas.Load())[0]
	ar.mu.Lock()
	done := make(chan mem.Ptr)
	go func() {
		th := a.Thread()
		p, err := th.Malloc(32)
		if err != nil {
			t.Error(err)
		}
		done <- p
	}()
	p := <-done
	ar.mu.Unlock()
	if a.ArenaCount() != 2 {
		t.Errorf("arenas = %d, want 2 after lock pressure", a.ArenaCount())
	}
	if got := chunkheap.Tag(a.Heap(), p); got != 1 {
		t.Errorf("block came from arena %d, want the new arena 1", got)
	}
	a.Thread().Free(p)
}

func TestThreadPrefersLastArena(t *testing.T) {
	a := newTest(4)
	th := a.Thread()
	p1, _ := th.Malloc(16)
	first := th.last
	p2, _ := th.Malloc(16)
	if th.last != first {
		t.Errorf("thread switched arenas without contention: %d -> %d", first, th.last)
	}
	th.Free(p1)
	th.Free(p2)
}

func TestLargeBlocksBypassArenas(t *testing.T) {
	a := newTest(2)
	th := a.Thread()
	before := a.Heap().Stats().RegionAllocs
	p, err := th.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.Heap().Stats().RegionAllocs == before {
		t.Error("large block did not come from the OS layer")
	}
	th.Free(p)
	if live := a.Heap().Stats().LiveWords; live != 0 {
		// Arenas may hold wilderness; but a pure large alloc/free on a
		// fresh allocator must return everything.
		t.Errorf("LiveWords = %d after large free", live)
	}
}

func TestConcurrentMixedArenas(t *testing.T) {
	a := newTest(2)
	heap := a.Heap()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := a.Thread()
			var live []mem.Ptr
			for i := 0; i < 15000; i++ {
				if len(live) > 32 {
					th.Free(live[0])
					live = live[1:]
				}
				p, err := th.Malloc(8 << (seed + uint64(i)) % 7)
				if err != nil {
					t.Errorf("malloc: %v", err)
					return
				}
				heap.Set(p, seed)
				live = append(live, p)
			}
			for _, p := range live {
				th.Free(p)
			}
		}(uint64(g))
	}
	wg.Wait()
	if a.ArenaCount() > maxArenas {
		t.Error("arena cap exceeded")
	}
}
