// Package hoard implements a Hoard-like lock-based baseline allocator
// (Berger et al., ASPLOS 2000), the primary comparison point of the
// paper and the source of its high-level heap organization.
//
// Faithful elements: multiple processor heaps (2P) plus one global
// heap; superblocks of one size class each; per-superblock fullness
// statistics and per-heap u (in-use) / a (capacity) statistics; the
// emptiness invariant that moves a mostly-empty superblock to the
// global heap when u < a − K·S and u < (1−f)·a; malloc allocating from
// the fullest non-full superblock of the thread's heap, refilling from
// the global heap before the OS; free returning blocks to the owning
// superblock under the owner heap's lock.
//
// Lock counts match the paper's latency analysis (§4.2.1): malloc
// acquires one lock (the processor heap's) in the common case, and free
// acquires two (the superblock's, then the owner heap's), three lock
// operations per malloc/free pair.
package hoard

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/sizeclass"
)

const (
	// fullness groups per class: group g holds superblocks with
	// inUse/maxcount in [g/4, (g+1)/4); a fifth group holds full ones.
	groups    = 4
	fullGroup = groups

	// emptyFraction is Hoard's f: a heap must keep u ≥ (1-f)·a.
	emptyFractionNum = 1
	emptyFractionDen = 4

	// slack is Hoard's K: a heap may hold at most K superblocks' worth
	// of unused capacity before shedding one to the global heap.
	slack = 4
)

// Config configures the allocator.
type Config struct {
	// Processors is P; the allocator creates 2P processor heaps plus
	// the global heap. 0 selects GOMAXPROCS via the core default.
	Processors int
	HeapConfig mem.Config
	Heap       *mem.Heap
}

// superblock is one size-class superblock with its statistics. Fields
// other than mu/owner are protected by the owner heap's lock.
type superblock struct {
	mu    sync.Mutex
	owner atomic.Int32 // heap index; 0 is the global heap

	idx      uint64 // table index, stored in block prefixes
	class    sizeclass.Class
	base     mem.Ptr
	freeHead uint64 // next free block index; class.MaxCount = none
	inUse    uint64

	group      int // current fullness group
	next, prev *superblock
	dead       bool // released back to the OS
}

// heapT is one heap (processor or global). bins[class][group] is a
// doubly-linked list of superblocks.
type heapT struct {
	mu   sync.Mutex
	bins [][]*superblock
	u, a uint64 // words in use / capacity words
	_    [4]uint64
}

// Allocator is the Hoard-like baseline.
type Allocator struct {
	heap  *mem.Heap
	procs int
	heaps []heapT // heaps[0] is the global heap

	table   atomic.Pointer[[]*superblock] // idx -> superblock, wait-free reads
	tableMu sync.Mutex

	nextThread atomic.Uint64
}

// New constructs the allocator.
func New(cfg Config) *Allocator {
	if cfg.Processors <= 0 {
		cfg.Processors = defaultProcessors()
	}
	h := cfg.Heap
	if h == nil {
		if cfg.HeapConfig.Arenas == 0 {
			// One region arena per processor, like the processor heaps.
			cfg.HeapConfig.Arenas = cfg.Processors
		}
		h = mem.NewHeap(cfg.HeapConfig)
	}
	a := &Allocator{
		heap:  h,
		procs: cfg.Processors,
		heaps: make([]heapT, 1+2*cfg.Processors),
	}
	for i := range a.heaps {
		bins := make([][]*superblock, sizeclass.NumClasses())
		for c := range bins {
			bins[c] = make([]*superblock, groups+1)
		}
		a.heaps[i].bins = bins
	}
	empty := make([]*superblock, 1) // index 0 reserved
	a.table.Store(&empty)
	return a
}

// Name identifies the allocator in benchmark output.
func (a *Allocator) Name() string { return "hoard" }

// Heap returns the backing address space.
func (a *Allocator) Heap() *mem.Heap { return a.heap }

// Thread registers a worker and returns its handle.
func (a *Allocator) Thread() *Thread {
	return &Thread{a: a, id: a.nextThread.Add(1) - 1}
}

// Thread is a per-goroutine handle; the thread id hashes to a
// processor heap as in Hoard.
type Thread struct {
	a  *Allocator
	id uint64
}

func (t *Thread) heapIndex() int { return 1 + int(t.id)%(2*t.a.procs) }

// UsableWords returns the payload words available in the block at p
// (the malloc_usable_size analogue): the size class's block words for
// superblock blocks, the region words for direct OS blocks, minus the
// prefix word either way.
func (t *Thread) UsableWords(p mem.Ptr) uint64 {
	prefix := t.a.heap.Load(p - 1)
	if prefix&1 != 0 {
		return mem.SizePrefixWords(prefix) - 1
	}
	return t.a.sbByIdx(prefix>>1).class.BlockWords - 1
}

func (sb *superblock) groupFor() int {
	if sb.inUse == sb.class.MaxCount {
		return fullGroup
	}
	return int(sb.inUse * groups / sb.class.MaxCount)
}

// unlink removes sb from its owner's bin list.
func (h *heapT) unlink(sb *superblock) {
	c := sb.class.Index
	if sb.prev != nil {
		sb.prev.next = sb.next
	} else {
		h.bins[c][sb.group] = sb.next
	}
	if sb.next != nil {
		sb.next.prev = sb.prev
	}
	sb.next, sb.prev = nil, nil
}

// link inserts sb at the head of its fullness group's list.
func (h *heapT) link(sb *superblock) {
	c := sb.class.Index
	g := sb.groupFor()
	sb.group = g
	sb.next = h.bins[c][g]
	sb.prev = nil
	if sb.next != nil {
		sb.next.prev = sb
	}
	h.bins[c][g] = sb
}

// regroup moves sb to its correct fullness group after inUse changed.
func (h *heapT) regroup(sb *superblock) {
	if g := sb.groupFor(); g != sb.group {
		h.unlink(sb)
		h.link(sb)
	}
}

func (a *Allocator) sbByIdx(idx uint64) *superblock {
	return (*a.table.Load())[idx]
}

func (a *Allocator) register(sb *superblock) {
	a.tableMu.Lock()
	old := *a.table.Load()
	idx := uint64(len(old))
	grown := make([]*superblock, len(old)+1)
	copy(grown, old)
	grown[idx] = sb
	sb.idx = idx
	a.table.Store(&grown)
	a.tableMu.Unlock()
}

// Malloc allocates size payload bytes.
func (t *Thread) Malloc(size uint64) (mem.Ptr, error) {
	a := t.a
	cls, small := sizeclass.For(size)
	if !small {
		return a.mallocLarge(a.heap.Arena(t.heapIndex()), size)
	}
	hi := t.heapIndex()
	h := &a.heaps[hi]
	h.mu.Lock()
	// Allocate from the fullest non-full superblock of this class.
	sb := h.fullestNonFull(cls.Index)
	if sb == nil {
		sb = a.refill(h, hi, cls)
		if sb == nil {
			var err error
			sb, err = a.newSuperblock(h, hi, cls)
			if err != nil {
				h.mu.Unlock()
				return 0, err
			}
		}
	}
	block := sb.popBlock(a.heap)
	h.u += cls.BlockWords
	h.regroup(sb)
	h.mu.Unlock()
	a.heap.Store(block, sb.idx<<1)
	return block.Add(1), nil
}

func (h *heapT) fullestNonFull(class int) *superblock {
	for g := groups - 1; g >= 0; g-- {
		for sb := h.bins[class][g]; sb != nil; sb = sb.next {
			if sb.inUse < sb.class.MaxCount {
				return sb
			}
		}
	}
	return nil
}

// refill transfers one superblock of the class from the global heap.
// Caller holds h's lock; the global heap's lock is acquired second
// (lock order: processor heap before global heap, everywhere).
func (a *Allocator) refill(h *heapT, hi int, cls sizeclass.Class) *superblock {
	g0 := &a.heaps[0]
	g0.mu.Lock()
	sb := g0.fullestNonFull(cls.Index)
	if sb == nil {
		g0.mu.Unlock()
		return nil
	}
	cap := sb.class.MaxCount * sb.class.BlockWords
	use := sb.inUse * sb.class.BlockWords
	// The whole transfer — unlink, owner change, relink — happens
	// while holding BOTH heap locks (the caller holds h's): a
	// concurrent free that read owner==global and acquired the global
	// lock after our release must observe the new owner and retry,
	// never a superblock halfway between heaps.
	g0.unlink(sb)
	g0.a -= cap
	g0.u -= use
	sb.owner.Store(int32(hi))
	h.link(sb)
	h.a += cap
	h.u += use
	g0.mu.Unlock()
	return sb
}

// newSuperblock allocates a fresh superblock from the OS into heap h.
// Caller holds h's lock.
func (a *Allocator) newSuperblock(h *heapT, hi int, cls sizeclass.Class) (*superblock, error) {
	// Draw from the region arena matching this processor heap, so
	// distinct heaps do not contend on one bump pointer.
	base, _, err := a.heap.Arena(hi).AllocRegion(cls.SBWords)
	if err != nil {
		return nil, err
	}
	sb := &superblock{class: cls, base: base, freeHead: 0}
	// Atomic link writes: a lock-free structure's stale reader may
	// still be examining words of a recycled region (see the note on
	// chunkheap's link accessors).
	for i := uint64(0); i < cls.MaxCount; i++ {
		a.heap.Store(base.Add(i*cls.BlockWords), i+1)
	}
	sb.owner.Store(int32(hi))
	a.register(sb)
	h.link(sb)
	h.a += cls.MaxCount * cls.BlockWords
	return sb, nil
}

// popBlock removes the head of sb's free list. Caller holds the owner
// heap's lock and sb has a free block.
func (sb *superblock) popBlock(h *mem.Heap) mem.Ptr {
	idx := sb.freeHead
	block := sb.base.Add(idx * sb.class.BlockWords)
	sb.freeHead = h.Get(block)
	sb.inUse++
	return block
}

func (a *Allocator) mallocLarge(ar mem.Arena, size uint64) (mem.Ptr, error) {
	// The prefix records the rounded region size, the canonical value
	// for FreeRegion on the free path.
	return ar.LargeAlloc(size, mem.SizePrefix)
}

// Free returns a block to its superblock, under the superblock's lock
// and then the owner heap's lock (two acquisitions, as in Hoard).
func (t *Thread) Free(p mem.Ptr) {
	if p.IsNil() {
		return
	}
	a := t.a
	block := p - 1
	prefix := a.heap.Load(block)
	if prefix&1 != 0 {
		a.heap.LargeFree(p, mem.SizePrefixWords(prefix))
		return
	}
	sb := a.sbByIdx(prefix >> 1)
	sb.mu.Lock()
	var h *heapT
	var hi int
	for {
		hi = int(sb.owner.Load())
		h = &a.heaps[hi]
		h.mu.Lock()
		if int(sb.owner.Load()) == hi {
			break
		}
		h.mu.Unlock()
	}
	// Push the block. The link write is atomic: a lock-free
	// structure's stale reader may still read this word (see the note
	// on chunkheap's link accessors).
	idx := block.Sub(sb.base) / sb.class.BlockWords
	a.heap.Store(block, sb.freeHead)
	sb.freeHead = idx
	sb.inUse--
	h.u -= sb.class.BlockWords
	h.regroup(sb)
	sb.mu.Unlock()

	if hi == 0 {
		// Global heap: release fully-empty superblocks to the OS.
		if sb.inUse == 0 {
			h.unlink(sb)
			h.a -= sb.class.MaxCount * sb.class.BlockWords
			sb.dead = true
			a.heap.FreeRegion(sb.base, sb.class.SBWords)
		}
		h.mu.Unlock()
		return
	}
	// Emptiness invariant: u ≥ a − K·S and u ≥ (1−f)·a; on violation
	// move the emptiest superblock of some class to the global heap.
	if h.u+slack*sizeclass.SuperblockWords < h.a &&
		h.u*emptyFractionDen < h.a*(emptyFractionDen-emptyFractionNum) {
		if victim := h.emptiest(); victim != nil {
			cap := victim.class.MaxCount * victim.class.BlockWords
			use := victim.inUse * victim.class.BlockWords
			h.unlink(victim)
			h.a -= cap
			h.u -= use
			g0 := &a.heaps[0]
			g0.mu.Lock() // lock order: processor heap, then global
			victim.owner.Store(0)
			g0.link(victim)
			g0.a += cap
			g0.u += use
			g0.mu.Unlock()
		}
	}
	h.mu.Unlock()
}

// emptiest returns the emptiest superblock in the heap (lowest
// occupied fullness group, any class), preferring completely empty
// ones.
func (h *heapT) emptiest() *superblock {
	var best *superblock
	bestFrac := ^uint64(0)
	for c := range h.bins {
		for g := 0; g <= fullGroup; g++ {
			sb := h.bins[c][g]
			if sb == nil {
				continue
			}
			if frac := sb.inUse * 1024 / sb.class.MaxCount; frac < bestFrac {
				best, bestFrac = sb, frac
			}
			break // groups above g are at least as full in this class
		}
	}
	return best
}

func defaultProcessors() int { return runtime.GOMAXPROCS(0) }
