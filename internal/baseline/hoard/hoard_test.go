package hoard

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/sizeclass"
)

func newTest() *Allocator {
	return New(Config{
		Processors: 2,
		HeapConfig: mem.Config{SegmentWordsLog2: 18, TotalWordsLog2: 28},
	})
}

func TestRoundTrip(t *testing.T) {
	a := newTest()
	th := a.Thread()
	p, err := th.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	a.Heap().Set(p, 42)
	th.Free(p)
	q, err := th.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if p != q {
		t.Errorf("freed block not reused: %v then %v", p, q)
	}
	th.Free(q)
}

func TestHeapCount(t *testing.T) {
	a := newTest()
	if len(a.heaps) != 1+2*2 {
		t.Errorf("heaps = %d, want 2P+1 = 5", len(a.heaps))
	}
}

func TestThreadsHashToHeaps(t *testing.T) {
	a := newTest()
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		seen[a.Thread().heapIndex()] = true
	}
	for hi := range seen {
		if hi == 0 {
			t.Error("a thread hashed to the global heap")
		}
	}
	if len(seen) != 4 {
		t.Errorf("threads spread over %d heaps, want 4", len(seen))
	}
}

// TestEmptinessInvariant verifies Hoard's defining behaviour: after a
// thread frees most of its blocks, its processor heap sheds
// mostly-empty superblocks to the global heap (u >= a - K*S and
// u >= (1-f)a restored).
func TestEmptinessInvariant(t *testing.T) {
	a := newTest()
	th := a.Thread()
	cls, _ := sizeclass.For(8)
	// Fill enough superblocks to exceed the K-superblock slack (the
	// invariant only binds once a - u > K*S).
	n := int(cls.MaxCount) * 16
	ptrs := make([]mem.Ptr, n)
	for i := range ptrs {
		p, err := th.Malloc(8)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i] = p
	}
	g0 := &a.heaps[0]
	g0.mu.Lock()
	beforeA := g0.a
	g0.mu.Unlock()
	// Free everything: the emptiness invariant must move superblocks
	// to the global heap.
	for _, p := range ptrs {
		th.Free(p)
	}
	g0.mu.Lock()
	afterA := g0.a
	g0.mu.Unlock()
	if afterA <= beforeA {
		t.Errorf("global heap capacity did not grow: %d -> %d", beforeA, afterA)
	}
	// And the owner heap must satisfy u >= a - K*S.
	hi := th.heapIndex()
	h := &a.heaps[hi]
	h.mu.Lock()
	u, capa := h.u, h.a
	h.mu.Unlock()
	if u+slack*sizeclass.SuperblockWords < capa {
		t.Errorf("emptiness invariant violated: u=%d a=%d", u, capa)
	}
}

// TestGlobalHeapRefill verifies a second thread reuses superblocks
// shed to the global heap instead of growing the OS footprint.
func TestGlobalHeapRefill(t *testing.T) {
	a := newTest()
	t1 := a.Thread()
	cls, _ := sizeclass.For(8)
	n := int(cls.MaxCount) * 16
	ptrs := make([]mem.Ptr, n)
	for i := range ptrs {
		p, err := t1.Malloc(8)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i] = p
	}
	for _, p := range ptrs {
		t1.Free(p)
	}
	allocsBefore := a.Heap().Stats().RegionAllocs
	// A thread on a different heap allocates: it should refill from
	// the global heap, not the OS.
	t2 := a.Thread() // id 1 -> different processor heap
	var ps []mem.Ptr
	for i := 0; i < int(cls.MaxCount); i++ {
		p, err := t2.Malloc(8)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	if got := a.Heap().Stats().RegionAllocs; got != allocsBefore {
		t.Errorf("OS regions grew (%d -> %d) despite global-heap inventory", allocsBefore, got)
	}
	for _, p := range ps {
		t2.Free(p)
	}
}

// TestEmptySuperblocksLeaveProcessorHeap verifies that after a massive
// free, the memory is either parked in the global heap (Hoard keeps
// inventory for reuse) or — for superblocks that empty while
// global-owned — released to the OS.
func TestEmptySuperblocksLeaveProcessorHeap(t *testing.T) {
	a := newTest()
	th := a.Thread()
	cls, _ := sizeclass.For(2048)
	n := int(cls.MaxCount) * 32
	ptrs := make([]mem.Ptr, n)
	for i := range ptrs {
		p, err := th.Malloc(2048)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i] = p
	}
	for _, p := range ptrs {
		th.Free(p)
	}
	g0 := &a.heaps[0]
	g0.mu.Lock()
	globalCap := g0.a
	g0.mu.Unlock()
	released := a.Heap().Stats().RegionFrees
	if globalCap == 0 && released == 0 {
		t.Error("freed superblocks neither parked in the global heap nor released")
	}
	// The processor heap must satisfy the emptiness invariant.
	hi := th.heapIndex()
	h := &a.heaps[hi]
	h.mu.Lock()
	u, capa := h.u, h.a
	h.mu.Unlock()
	if u+slack*sizeclass.SuperblockWords < capa && u*emptyFractionDen < capa*(emptyFractionDen-emptyFractionNum) {
		t.Errorf("emptiness invariant violated: u=%d a=%d", u, capa)
	}
}

// TestRefillTransferRace is a regression test for the global->processor
// heap transfer: a concurrent free must never catch a superblock
// halfway between heaps (owner changed but not yet linked, or vice
// versa). One thread churns mallocs that repeatedly refill from the
// global heap while another frees the very blocks coming out of those
// transferred superblocks.
func TestRefillTransferRace(t *testing.T) {
	a := newTest()
	heap := a.Heap()
	producer := a.Thread()
	ch := make(chan mem.Ptr, 512)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // remote freer
		defer wg.Done()
		th := a.Thread()
		for p := range ch {
			if heap.Get(p) == 0 {
				t.Error("payload lost")
				return
			}
			th.Free(p)
		}
	}()
	// Heavy malloc/handoff churn: emptiness shedding moves superblocks
	// to the global heap, subsequent mallocs refill them back, all
	// while remote frees race the transfers.
	for round := 0; round < 200; round++ {
		var batch []mem.Ptr
		for i := 0; i < 600; i++ {
			p, err := producer.Malloc(8)
			if err != nil {
				t.Fatal(err)
			}
			heap.Set(p, uint64(round)<<16|uint64(i)|1)
			batch = append(batch, p)
		}
		for _, p := range batch {
			ch <- p
		}
	}
	close(ch)
	wg.Wait()
	// All superblocks must have consistent inUse counts (no underflow:
	// groupFor would have panicked) and heaps non-negative stats.
	for i := range a.heaps {
		h := &a.heaps[i]
		h.mu.Lock()
		if h.u > h.a {
			t.Errorf("heap %d: u=%d > a=%d", i, h.u, h.a)
		}
		h.mu.Unlock()
	}
}

func TestConcurrentIntegrity(t *testing.T) {
	a := newTest()
	heap := a.Heap()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := a.Thread()
			rng := rand.New(rand.NewSource(seed))
			type held struct {
				p   mem.Ptr
				tag uint64
			}
			var live []held
			for i := 0; i < 15000; i++ {
				if len(live) > 0 && (rng.Intn(2) == 0 || len(live) > 64) {
					k := rng.Intn(len(live))
					if heap.Get(live[k].p) != live[k].tag {
						t.Error("payload corrupted")
						return
					}
					th.Free(live[k].p)
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				p, err := th.Malloc(uint64(8 << rng.Intn(8)))
				if err != nil {
					t.Errorf("malloc: %v", err)
					return
				}
				tag := uint64(seed)<<40 | uint64(i)
				heap.Set(p, tag)
				live = append(live, held{p, tag})
			}
			for _, h := range live {
				th.Free(h.p)
			}
		}(int64(g) + 1)
	}
	wg.Wait()
}
