// Package offload implements an opt-in allocation-core architecture on
// top of the Michael (PLDI 2004) core allocator: instead of every
// worker thread running the full malloc/free paths against the shared
// heap structures, workers submit batched requests to a small set of
// dedicated allocator goroutines ("allocation cores") over the
// lock-free MS queue (internal/lfqueue), overlapping allocation work
// with compute. This is the architecture explored by the
// allocation-offload line of work (SpeedMalloc et al.): the shared-heap
// CAS traffic concentrates on K cores whose caches stay hot, while
// workers touch only their private stash on the common path.
//
// Shape:
//
//   - Each Worker keeps a per-size-class stash of pre-allocated blocks
//     and a buffer of deferred frees. Malloc pops the stash; Free
//     appends to the buffer. Neither touches shared allocator state.
//   - When a stash runs low the worker enqueues a refill request
//     (count = Batch) and keeps going; the completed batch arrives
//     through a single-slot mailbox (atomic.Pointer) the worker polls
//     at its next operation. At most one refill per worker is
//     outstanding, so the mailbox is never overwritten.
//   - When the free buffer reaches Batch the worker enqueues it as one
//     request and starts a fresh buffer.
//   - Allocation cores dequeue requests and execute them with their
//     own core.Thread handles, calling SetCharge so OpStats land on
//     the submitting worker (see core.Thread.SetCharge).
//
// Degradation, never deadlock: every wait in the worker is bounded.
// If the queue is over its depth bound, the engine is stopping, or a
// refill does not arrive within the spin budget, the worker falls back
// to a synchronous Malloc/Free on its own thread handle — slower, but
// it cannot strand. Unregister is the one unbounded wait (a pending
// refill's blocks must not leak), and it is guaranteed to resolve:
// the request is completed by a live core, by the undertaker of a
// killed core, by the engine's final drain, or — if the core fleet is
// already gone — by the worker draining the queue itself.
//
// Kill tolerance: allocation cores may be killed at any hook point
// (sched fault injection, SetCoreHook). A killed core's in-flight
// request is adopted by its undertaker: a refill is finished with the
// blocks already allocated (the waiter falls back for the rest), a
// free batch is re-enqueued minus the single block whose Free was in
// flight (leaked — exactly the paper's kill semantics, §1), and a
// replacement core is spawned unless the engine is stopping. No batch
// is ever stranded.
package offload

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lfqueue"
	"repro/internal/mem"
	"repro/internal/sizeclass"
	"repro/internal/telemetry"
)

// DefaultBatch is the refill/free batch size when Config.Offload.Batch
// is zero.
const DefaultBatch = 32

// defaultBoundPerCore sets the queue depth (in requests, i.e. batches)
// beyond which workers stop submitting and fall back synchronously.
const defaultBoundPerCore = 32

// awaitSpins bounds the yield-loop a worker spends waiting for a
// refill it needs right now before giving up and falling back.
const awaitSpins = 4096

// ErrCoreKilled marks a refill whose allocator core was killed
// mid-batch; the blocks allocated before the kill are still delivered.
var ErrCoreKilled = errors.New("offload: allocator core killed mid-refill")

type reqKind uint8

const (
	reqRefill reqKind = iota
	reqFree
)

const (
	reqPending uint32 = iota
	reqDone
)

// request is one unit of queued work. ptrs/err/next are written by
// exactly one goroutine at a time (submitter before Enqueue, executor
// after Dequeue, waiter after observing the mailbox); the state and
// mailbox stores publish them.
type request struct {
	kind  reqKind
	w     *Worker
	class int
	count int       // refill: blocks requested
	next  int       // free: first unprocessed index (undertaker resume point)
	ptrs  []mem.Ptr // free: blocks to free; refill: blocks allocated
	err   error
	state atomic.Uint32
}

// finish publishes completion: state first, then (for refills) the
// waiter's mailbox, so a mailbox load that observes the request also
// observes its ptrs.
func (r *request) finish() {
	r.state.Store(reqDone)
	if r.kind == reqRefill {
		r.w.mail.Store(r)
	}
}

// Engine owns the request queue and the allocation-core goroutines for
// one core.Allocator. Cores are spawned lazily on the first Worker and
// quiesce automatically when the last Worker unregisters, so an idle
// engine holds no goroutines.
type Engine struct {
	a     *core.Allocator
	cores int
	batch int
	low   int // stash watermark triggering a prefetch refill

	q     *lfqueue.Queue[*request]
	bound atomic.Int64

	running  atomic.Bool
	stopping atomic.Bool
	live     atomic.Int32

	mu      sync.Mutex
	workers int
	coreWG  sync.WaitGroup
	hook    func(core.HookPoint)

	submits       atomic.Uint64
	refillBatches atomic.Uint64
	refillBlocks  atomic.Uint64
	refillErrors  atomic.Uint64
	freeBatches   atomic.Uint64
	freedBlocks   atomic.Uint64
	stashHits     atomic.Uint64
	stashMisses   atomic.Uint64
	fallbacks     atomic.Uint64
	coreKills     atomic.Uint64
	adopted       atomic.Uint64
}

// Stats is a point-in-time snapshot of the engine counters.
type Stats struct {
	Submits       uint64 // requests enqueued (refills + free batches)
	RefillBatches uint64 // refill requests executed
	RefillBlocks  uint64 // blocks delivered by refills
	RefillErrors  uint64 // refills cut short (OOM or core kill)
	FreeBatches   uint64 // free batches executed
	FreedBlocks   uint64 // blocks freed by batches
	StashHits     uint64 // worker mallocs served from the stash
	StashMisses   uint64 // worker mallocs that found an empty stash
	Fallbacks     uint64 // synchronous fallbacks (backpressure/timeout)
	CoreKills     uint64 // allocation cores killed by a hook panic
	AdoptedBlocks uint64 // free-batch blocks re-enqueued by undertakers
	QueueDepth    int    // current queue length, in requests
	LiveCores     int    // allocation cores currently running
	Workers       int    // registered workers
}

// New builds an engine for a from its construction-time
// Config.Offload. Callers gate on OffloadConfig().Cores > 0; New
// clamps a non-positive core count to 1.
func New(a *core.Allocator) *Engine {
	oc := a.OffloadConfig()
	return NewWith(a, oc.Cores, oc.Batch)
}

// NewWith builds an engine with explicit knobs, independent of the
// allocator's Config.Offload.
func NewWith(a *core.Allocator, cores, batch int) *Engine {
	if cores < 1 {
		cores = 1
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	low := batch / 4
	if low < 1 {
		low = 1
	}
	e := &Engine{
		a:     a,
		cores: cores,
		batch: batch,
		low:   low,
		q:     lfqueue.New[*request](),
	}
	e.bound.Store(int64(defaultBoundPerCore * cores))
	return e
}

// Allocator returns the underlying core allocator.
func (e *Engine) Allocator() *core.Allocator { return e.a }

// Cores returns the configured allocation-core count.
func (e *Engine) Cores() int { return e.cores }

// Batch returns the refill/free batch size.
func (e *Engine) Batch() int { return e.batch }

// SetQueueBound overrides the queue-depth backpressure bound (in
// requests). Tests use a tiny bound to force the fallback path.
func (e *Engine) SetQueueBound(n int) { e.bound.Store(int64(n)) }

// SetCoreHook installs a core.Thread hook on every allocation core
// spawned afterwards (including undertaker respawns). A hook that
// panics kills the core at that point; the engine adopts its in-flight
// work and respawns. Install before the first Worker to cover the
// initial fleet.
func (e *Engine) SetCoreHook(f func(core.HookPoint)) {
	e.mu.Lock()
	e.hook = f
	e.mu.Unlock()
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	workers := e.workers
	e.mu.Unlock()
	return Stats{
		Submits:       e.submits.Load(),
		RefillBatches: e.refillBatches.Load(),
		RefillBlocks:  e.refillBlocks.Load(),
		RefillErrors:  e.refillErrors.Load(),
		FreeBatches:   e.freeBatches.Load(),
		FreedBlocks:   e.freedBlocks.Load(),
		StashHits:     e.stashHits.Load(),
		StashMisses:   e.stashMisses.Load(),
		Fallbacks:     e.fallbacks.Load(),
		CoreKills:     e.coreKills.Load(),
		AdoptedBlocks: e.adopted.Load(),
		QueueDepth:    e.q.Len(),
		LiveCores:     int(e.live.Load()),
		Workers:       workers,
	}
}

// Worker registers a new worker with the engine, spawning the
// allocation cores if this is the first registration (or the first
// after a quiesce). The returned Worker is not safe for concurrent
// use; obtain one per goroutine and Unregister it when done.
func (e *Engine) Worker() *Worker {
	e.mu.Lock()
	for e.stopping.Load() {
		// A quiesce is in flight; let it finish, then restart.
		e.mu.Unlock()
		runtime.Gosched()
		e.mu.Lock()
	}
	if !e.running.Load() {
		e.running.Store(true)
		for i := 0; i < e.cores; i++ {
			e.coreWG.Add(1)
			e.live.Add(1)
			go e.runCore()
		}
	}
	e.workers++
	e.mu.Unlock()

	th := e.a.Thread()
	return &Worker{
		eng:   e,
		th:    th,
		h:     e.q.Handle(),
		sh:    th.TelemetryShard(),
		stash: make([][]mem.Ptr, sizeclass.NumClasses()),
	}
}

// release is the Unregister-side bookkeeping; the last worker out
// quiesces the core fleet so idle engines hold no goroutines.
func (e *Engine) release() {
	e.mu.Lock()
	e.workers--
	last := e.workers == 0 && e.running.Load()
	e.mu.Unlock()
	if last {
		e.quiesce(false)
	}
}

// Stop force-quiesces the allocation cores. Workers still registered
// degrade to synchronous fallback until a new registration restarts
// the fleet. Queued work is drained before Stop returns.
func (e *Engine) Stop() { e.quiesce(true) }

func (e *Engine) quiesce(force bool) {
	e.mu.Lock()
	if !e.running.Load() || (!force && e.workers > 0) {
		e.mu.Unlock()
		return
	}
	e.stopping.Store(true)
	e.mu.Unlock()

	e.coreWG.Wait()
	// Adopt whatever the exiting (or killed) cores left behind: free
	// batches are executed, refills completed and delivered, so every
	// pending request resolves and no block is stranded.
	e.drainAll()

	e.mu.Lock()
	e.running.Store(false)
	e.stopping.Store(false)
	e.mu.Unlock()
}

// respawn replaces a killed core. Called by the dying core's
// undertaker before its WaitGroup slot is released, so the Add never
// races a Wait on a drained group.
func (e *Engine) respawn() {
	if e.stopping.Load() {
		return
	}
	e.mu.Lock()
	if e.running.Load() && !e.stopping.Load() {
		e.coreWG.Add(1)
		e.live.Add(1)
		go e.runCore()
	}
	e.mu.Unlock()
}

// runCore is one allocation core: dequeue, execute, repeat. On a kill
// (hook panic) the undertaker in execute has already adopted the
// in-flight request; the core counts the kill, arranges a successor,
// and exits without touching its dead thread handle again.
func (e *Engine) runCore() {
	defer e.coreWG.Done()
	defer e.live.Add(-1)
	h := e.q.Handle()
	defer h.Close()

	th := e.a.Thread()
	e.mu.Lock()
	hook := e.hook
	e.mu.Unlock()
	if hook != nil {
		th.SetHook(hook)
	}

	idle := 0
	for {
		req, ok := h.Dequeue()
		if !ok {
			if e.stopping.Load() && e.q.Len() == 0 {
				quietUnregister(th)
				return
			}
			idle++
			if idle < 64 {
				runtime.Gosched()
			} else {
				time.Sleep(20 * time.Microsecond)
			}
			continue
		}
		idle = 0
		if killed := e.execute(th, req); killed {
			// th died mid-operation; like sched's killed victims it is
			// abandoned, never unregistered (its reservations are the
			// bounded leak the paper's kill semantics allow).
			e.coreKills.Add(1)
			e.respawn()
			return
		}
	}
}

// quietUnregister unregisters an exiting core's thread, tolerating a
// fault-injection kill during the final magazine flush: the core was
// exiting anyway, so the handle is simply abandoned like any killed
// thread (its cached blocks leak, bounded).
func quietUnregister(th *core.Thread) {
	defer func() { _ = recover() }()
	th.Unregister()
}

// execute runs one request on th, charging OpStats to the submitting
// worker. Returns killed=true if a hook panic aborted the operation;
// the request has then already been adopted.
func (e *Engine) execute(th *core.Thread, req *request) (killed bool) {
	defer func() {
		if r := recover(); r != nil {
			killed = true
			e.adopt(req)
		}
	}()
	th.SetCharge(req.w.th)
	switch req.kind {
	case reqFree:
		for req.next < len(req.ptrs) {
			p := req.ptrs[req.next]
			// Advance before the op: a kill mid-Free leaks exactly this
			// block and the undertaker's re-enqueue can never double-free.
			req.next++
			th.Free(p)
		}
		th.SetCharge(nil)
		e.freeBatches.Add(1)
		e.freedBlocks.Add(uint64(len(req.ptrs)))
		e.noteBatch(th, uint64(len(req.ptrs)))
		req.finish()
	case reqRefill:
		size := sizeclass.ByIndex(req.class).PayloadBytes
		for len(req.ptrs) < req.count {
			p, err := th.Malloc(size)
			if err != nil {
				req.err = err
				e.refillErrors.Add(1)
				break
			}
			req.ptrs = append(req.ptrs, p)
		}
		th.SetCharge(nil)
		e.refillBatches.Add(1)
		e.refillBlocks.Add(uint64(len(req.ptrs)))
		e.noteBatch(th, uint64(len(req.ptrs)))
		req.finish()
	}
	return false
}

func (e *Engine) noteBatch(th *core.Thread, n uint64) {
	if sh := th.TelemetryShard(); sh != nil {
		sh.OffBatch(n)
	}
}

// adopt resolves a killed core's in-flight request using only the
// queue and the request itself — never the dead thread handle.
func (e *Engine) adopt(req *request) {
	switch req.kind {
	case reqRefill:
		// Deliver the blocks allocated before the kill; the waiter
		// falls back synchronously for the rest. The single block whose
		// Malloc was in flight (if any) is leaked by the kill.
		if req.err == nil {
			req.err = ErrCoreKilled
		}
		e.refillErrors.Add(1)
		req.finish()
	case reqFree:
		// Re-enqueue the unprocessed remainder. ptrs[next-1] — the Free
		// in flight at the kill — may or may not have completed, so it
		// is leaked rather than risked as a double free.
		rest := req.ptrs[req.next:]
		req.finish()
		if len(rest) == 0 {
			return
		}
		e.adopted.Add(uint64(len(rest)))
		nr := &request{kind: reqFree, w: req.w, ptrs: append([]mem.Ptr(nil), rest...)}
		h := e.q.Handle()
		h.Enqueue(nr)
		h.Close()
	}
}

// drainAll executes every queued request on a fresh thread handle.
// Called after the core fleet has exited so refill waiters and free
// batches submitted in the shutdown race window still resolve.
func (e *Engine) drainAll() {
	th := e.a.Thread()
	h := e.q.Handle()
	for {
		req, ok := h.Dequeue()
		if !ok {
			break
		}
		e.execute(th, req)
	}
	h.Close()
	th.Unregister()
}

// drainOne lets a stuck worker make progress itself when the core
// fleet is gone (see Worker.Unregister).
func (e *Engine) drainOne(th *core.Thread, h *lfqueue.Handle[*request]) bool {
	req, ok := h.Dequeue()
	if !ok {
		return false
	}
	e.execute(th, req)
	return true
}

// deadStopping reports that the engine is quiescing and no allocation
// core remains to serve the queue.
func (e *Engine) deadStopping() bool {
	return e.stopping.Load() && e.live.Load() == 0
}

// ready reports whether submits should be attempted at all.
func (e *Engine) ready() bool {
	return e.running.Load() && !e.stopping.Load()
}

// Worker is one compute thread's interface to the engine: a private
// per-class block stash, a deferred-free buffer, and a mailbox for
// refill completions. Implements the same Malloc/Free/Unregister
// surface as core.Thread. Not safe for concurrent use.
type Worker struct {
	eng     *Engine
	th      *core.Thread
	h       *lfqueue.Handle[*request]
	sh      *telemetry.ThreadShard
	stash   [][]mem.Ptr
	freeBuf []mem.Ptr
	pending *request // the single outstanding refill, if any
	mail    atomic.Pointer[request]
	closed  bool
}

// Thread exposes the worker's fallback thread handle (census
// attribution, tests).
func (w *Worker) Thread() *core.Thread { return w.th }

// poll absorbs a completed refill from the mailbox into the stash.
func (w *Worker) poll() {
	req := w.mail.Swap(nil)
	if req == nil {
		return
	}
	w.stash[req.class] = append(w.stash[req.class], req.ptrs...)
	if w.pending == req {
		w.pending = nil
	}
}

// Malloc returns a block of at least size bytes. Common path: one
// mailbox load and a stash pop — no shared allocator state touched.
func (w *Worker) Malloc(size uint64) (mem.Ptr, error) {
	if w.mail.Load() != nil {
		w.poll()
	}
	if w.closed {
		return w.th.Malloc(size)
	}
	cls, small := sizeclass.IndexFor(size)
	if !small {
		// Large allocations bypass the offload path entirely.
		return w.th.Malloc(size)
	}
	if s := w.stash[cls]; len(s) > 0 {
		p := s[len(s)-1]
		w.stash[cls] = s[:len(s)-1]
		w.eng.stashHits.Add(1)
		if w.sh != nil {
			w.sh.OffHit()
		}
		if len(s)-1 <= w.eng.low && w.pending == nil {
			// Prefetch: refill in the background while we keep
			// computing off the remaining stash.
			w.submitRefill(cls)
		}
		return p, nil
	}
	w.eng.stashMisses.Add(1)
	if w.sh != nil {
		w.sh.OffMiss()
	}
	if w.pending == nil && !w.submitRefill(cls) {
		return w.fallbackMalloc(size)
	}
	if w.pending != nil && w.pending.class == cls && w.await() {
		if s := w.stash[cls]; len(s) > 0 {
			p := s[len(s)-1]
			w.stash[cls] = s[:len(s)-1]
			return p, nil
		}
	}
	return w.fallbackMalloc(size)
}

// Free releases a block. Small blocks are deferred into the batch
// buffer; large blocks and post-Unregister frees go straight through.
func (w *Worker) Free(p mem.Ptr) {
	if w.mail.Load() != nil {
		w.poll()
	}
	if w.closed || p.IsNil() || w.eng.a.BlockIsLarge(p) {
		w.th.Free(p)
		return
	}
	w.freeBuf = append(w.freeBuf, p)
	if len(w.freeBuf) >= w.eng.batch {
		w.flushFrees()
	}
}

// submitRefill enqueues a refill for cls unless backpressure or
// shutdown says no. Reports whether a request is now outstanding.
func (w *Worker) submitRefill(cls int) bool {
	e := w.eng
	if !e.ready() || e.q.Len() >= int(e.bound.Load()) {
		return false
	}
	req := &request{kind: reqRefill, w: w, class: cls, count: e.batch, ptrs: make([]mem.Ptr, 0, e.batch)}
	w.pending = req
	w.h.Enqueue(req)
	e.submits.Add(1)
	if w.sh != nil {
		w.sh.OffSubmit()
	}
	return true
}

// flushFrees submits the buffered frees as one request, or executes
// them synchronously under backpressure.
func (w *Worker) flushFrees() {
	if len(w.freeBuf) == 0 {
		return
	}
	e := w.eng
	if !e.ready() || e.q.Len() >= int(e.bound.Load()) {
		e.fallbacks.Add(1)
		if w.sh != nil {
			w.sh.OffFallback()
		}
		for _, p := range w.freeBuf {
			w.th.Free(p)
		}
		w.freeBuf = w.freeBuf[:0]
		return
	}
	req := &request{kind: reqFree, w: w, ptrs: append(make([]mem.Ptr, 0, len(w.freeBuf)), w.freeBuf...)}
	w.freeBuf = w.freeBuf[:0]
	w.h.Enqueue(req)
	e.submits.Add(1)
	if w.sh != nil {
		w.sh.OffSubmit()
	}
}

// await spins (yielding) for the pending refill, bounded by
// awaitSpins. Reports whether the mailbox was absorbed.
func (w *Worker) await() bool {
	for i := 0; i < awaitSpins; i++ {
		if w.mail.Load() != nil {
			w.poll()
			return true
		}
		runtime.Gosched()
	}
	return false
}

func (w *Worker) fallbackMalloc(size uint64) (mem.Ptr, error) {
	w.eng.fallbacks.Add(1)
	if w.sh != nil {
		w.sh.OffFallback()
	}
	return w.th.Malloc(size)
}

// Unregister resolves the outstanding refill, returns the stash and
// buffered frees to the allocator (balancing Mallocs == Frees at
// quiescence — refill blocks were charged to this worker), and
// releases the worker's handles. The last worker out quiesces the
// engine's core fleet.
func (w *Worker) Unregister() {
	if w.closed {
		return
	}
	w.closed = true
	if req := w.pending; req != nil {
		// Guaranteed to resolve: a live core completes it, a killed
		// core's undertaker finishes it, the quiesce drain executes it,
		// or — if the fleet is already gone — we drain it ourselves.
		for req.state.Load() == reqPending {
			if w.eng.deadStopping() {
				if !w.eng.drainOne(w.th, w.h) {
					runtime.Gosched()
				}
				continue
			}
			runtime.Gosched()
		}
		w.poll()
		w.pending = nil
	}
	w.poll()
	for c := range w.stash {
		for _, p := range w.stash[c] {
			w.th.Free(p)
		}
		w.stash[c] = nil
	}
	for _, p := range w.freeBuf {
		w.th.Free(p)
	}
	w.freeBuf = nil
	w.h.Close()
	w.th.Unregister()
	w.eng.release()
}
