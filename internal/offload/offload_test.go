package offload

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sizeclass"
)

func newEngine(t *testing.T, cores, batch int) *Engine {
	t.Helper()
	a := core.New(core.Config{
		Processors: 4,
		Offload:    core.OffloadConfig{Cores: cores, Batch: batch},
	})
	return New(a)
}

// checkQuiesced verifies the engine wound down clean: no stranded
// batches, no live cores, and the allocator's books balance.
func checkQuiesced(t *testing.T, e *Engine) {
	t.Helper()
	st := e.Stats()
	if st.QueueDepth != 0 {
		t.Errorf("queue depth %d after quiesce, want 0 (stranded batches)", st.QueueDepth)
	}
	if st.LiveCores != 0 {
		t.Errorf("%d live cores after quiesce, want 0", st.LiveCores)
	}
	if st.Workers != 0 {
		t.Errorf("%d workers after quiesce, want 0", st.Workers)
	}
	agg := e.Allocator().Stats().Ops
	if agg.Mallocs != agg.Frees {
		t.Errorf("aggregate mallocs %d != frees %d at quiescence", agg.Mallocs, agg.Frees)
	}
	if err := e.Allocator().CheckInvariants(0); err != nil {
		t.Errorf("invariants after quiesce: %v", err)
	}
}

// TestWorkerBasic drives one worker through enough churn to exercise
// stash refills, free batching, and the quiesce drain.
func TestWorkerBasic(t *testing.T) {
	e := newEngine(t, 2, 8)
	w := e.Worker()

	live := make([]mem.Ptr, 0, 512)
	for i := 0; i < 2000; i++ {
		p, err := w.Malloc(uint64(16 + (i%7)*24))
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
		if len(live) >= 400 {
			for _, q := range live[:200] {
				w.Free(q)
			}
			live = append(live[:0], live[200:]...)
		}
	}
	for _, q := range live {
		w.Free(q)
	}
	w.Unregister()

	st := e.Stats()
	if st.StashHits == 0 {
		t.Error("no stash hits: the offload path never engaged")
	}
	if st.RefillBlocks == 0 || st.FreedBlocks == 0 {
		t.Errorf("refilled %d / batch-freed %d blocks, want both > 0", st.RefillBlocks, st.FreedBlocks)
	}
	checkQuiesced(t, e)
}

// TestWorkerDistinctPointers checks the stash never hands out the same
// block twice while it is live.
func TestWorkerDistinctPointers(t *testing.T) {
	e := newEngine(t, 1, 16)
	w := e.Worker()
	seen := make(map[mem.Ptr]bool, 1024)
	ptrs := make([]mem.Ptr, 0, 1024)
	for i := 0; i < 1024; i++ {
		p, err := w.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("block %v handed out twice while live", p)
		}
		seen[p] = true
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		w.Free(p)
	}
	w.Unregister()
	checkQuiesced(t, e)
}

// TestLargeBypass verifies allocations beyond the size-class range go
// straight to the worker's own thread, and their frees are not
// deferred into a batch.
func TestLargeBypass(t *testing.T) {
	e := newEngine(t, 1, 8)
	w := e.Worker()
	p, err := w.Malloc(sizeclass.MaxPayloadBytes + 1)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	w.Free(p)
	after := e.Stats()
	if after.Submits != before.Submits {
		t.Error("large free was batched; want direct synchronous free")
	}
	w.Unregister()
	checkQuiesced(t, e)
}

// TestFallbackUnderExhaustion forces the queue-depth bound to zero so
// every submit is refused: all operations must complete synchronously
// (degraded, never deadlocked), with fallbacks counted.
func TestFallbackUnderExhaustion(t *testing.T) {
	e := newEngine(t, 1, 8)
	e.SetQueueBound(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := e.Worker()
			defer w.Unregister()
			ptrs := make([]mem.Ptr, 0, 64)
			for i := 0; i < 1500; i++ {
				p, err := w.Malloc(48)
				if err != nil {
					t.Error(err)
					return
				}
				ptrs = append(ptrs, p)
				if len(ptrs) == 64 {
					for _, q := range ptrs {
						w.Free(q)
					}
					ptrs = ptrs[:0]
				}
			}
			for _, q := range ptrs {
				w.Free(q)
			}
		}()
	}
	wg.Wait()
	st := e.Stats()
	if st.Fallbacks == 0 {
		t.Error("queue bound 0 produced no fallbacks")
	}
	if st.StashHits != 0 || st.RefillBlocks != 0 {
		t.Errorf("bound 0 still refilled (%d hits, %d blocks)", st.StashHits, st.RefillBlocks)
	}
	checkQuiesced(t, e)
}

// TestWorkerStorm churns worker registration concurrently with steady
// allocation traffic — the engine must restart/quiesce its core fleet
// across generations without losing blocks. Run with -race.
func TestWorkerStorm(t *testing.T) {
	e := newEngine(t, 2, 8)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 30; r++ {
				w := e.Worker()
				ptrs := make([]mem.Ptr, 0, 40)
				for i := 0; i < 40; i++ {
					p, err := w.Malloc(uint64(16 + (i%5)*32))
					if err != nil {
						t.Error(err)
						break
					}
					ptrs = append(ptrs, p)
				}
				for _, p := range ptrs {
					w.Free(p)
				}
				w.Unregister()
			}
		}()
	}
	wg.Wait()
	checkQuiesced(t, e)
}

// TestStopWithLiveWorkers force-stops the fleet while workers are mid
// traffic; they must degrade to synchronous fallback without deadlock,
// and a later registration must restart the fleet.
func TestStopWithLiveWorkers(t *testing.T) {
	e := newEngine(t, 2, 8)
	var phase atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := e.Worker()
			defer w.Unregister()
			ptrs := make([]mem.Ptr, 0, 32)
			for i := 0; i < 4000; i++ {
				if i == 1000 {
					phase.Add(1)
				}
				p, err := w.Malloc(64)
				if err != nil {
					t.Error(err)
					return
				}
				ptrs = append(ptrs, p)
				if len(ptrs) == 32 {
					for _, q := range ptrs {
						w.Free(q)
					}
					ptrs = ptrs[:0]
				}
			}
			for _, q := range ptrs {
				w.Free(q)
			}
		}()
	}
	// Stop once all workers are in the thick of it.
	for phase.Load() < 4 {
	}
	e.Stop()
	wg.Wait()
	checkQuiesced(t, e)

	// The fleet restarts on the next registration.
	w := e.Worker()
	p, err := w.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	w.Free(p)
	w.Unregister()
	checkQuiesced(t, e)
}

// TestCoreKillAdoption kills allocation cores at free and malloc hook
// points mid-batch. Every batch must still resolve — refill waiters
// fall back, free remainders are adopted and eventually executed —
// with at most the per-kill single-block leak the kill semantics
// allow, and replacement cores keep the engine serving.
func TestCoreKillAdoption(t *testing.T) {
	a := core.New(core.Config{Processors: 4, Offload: core.OffloadConfig{Cores: 2, Batch: 8}})
	e := New(a)
	const maxKills = 20
	var kills atomic.Int32
	var step atomic.Uint64
	e.SetCoreHook(func(hp core.HookPoint) {
		if step.Add(1)%97 == 0 && kills.Add(1) <= maxKills {
			panic("offload-test-kill")
		}
	})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := e.Worker()
			defer w.Unregister()
			ptrs := make([]mem.Ptr, 0, 48)
			for i := 0; i < 3000; i++ {
				p, err := w.Malloc(uint64(16 + (i%4)*48))
				if err != nil {
					t.Error(err)
					return
				}
				ptrs = append(ptrs, p)
				if len(ptrs) == 48 {
					for _, q := range ptrs {
						w.Free(q)
					}
					ptrs = ptrs[:0]
				}
			}
			for _, q := range ptrs {
				w.Free(q)
			}
		}()
	}
	wg.Wait()

	st := e.Stats()
	if st.CoreKills == 0 {
		t.Skip("no kills fired (timing); nothing to verify")
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth %d after quiesce, want 0 (stranded batches)", st.QueueDepth)
	}
	if st.LiveCores != 0 {
		t.Errorf("%d live cores after quiesce, want 0", st.LiveCores)
	}
	// Kills leak bounded memory (the in-flight block plus the dead
	// core's reservations) but must never lose track of whole batches:
	// post-mortem structural invariants hold with leaks tolerated.
	if err := a.CheckInvariants(-1); err != nil {
		t.Errorf("invariants after kills: %v", err)
	}
	t.Logf("kills=%d adopted=%d refillErrors=%d fallbacks=%d",
		st.CoreKills, st.AdoptedBlocks, st.RefillErrors, st.Fallbacks)
}

// TestChargeAttributionThroughEngine verifies end to end that refill
// and batched-free work executed by allocation cores lands on the
// submitting worker's OpStats, not on the cores'.
func TestChargeAttributionThroughEngine(t *testing.T) {
	e := newEngine(t, 2, 8)
	w := e.Worker()
	const n = 600
	ptrs := make([]mem.Ptr, 0, n)
	for i := 0; i < n; i++ {
		p, err := w.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		w.Free(p)
	}
	stats := w.Thread().OpStats()
	w.Unregister()

	if stats.Mallocs == 0 || stats.Frees == 0 {
		t.Errorf("worker charged %d mallocs / %d frees; proxy work not attributed to submitter",
			stats.Mallocs, stats.Frees)
	}
	agg := e.Allocator().Stats().Ops
	if agg.Mallocs != agg.Frees {
		t.Errorf("aggregate mallocs %d != frees %d", agg.Mallocs, agg.Frees)
	}
	checkQuiesced(t, e)
}
