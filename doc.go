// Package repro is a Go reproduction of Maged M. Michael, "Scalable
// Lock-Free Dynamic Memory Allocation" (PLDI 2004).
//
// The public API lives in package repro/alloc: the lock-free allocator
// (repro/internal/core) and the three baseline allocators the paper
// compares against, all over a simulated word-addressed heap
// (repro/internal/mem). See README.md for a tour, DESIGN.md for the
// system inventory and experiment index, and EXPERIMENTS.md for
// paper-vs-measured results.
//
// The root package contains no code; bench_test.go here hosts one
// testing.B benchmark per table and figure of the paper's evaluation
// section.
package repro
