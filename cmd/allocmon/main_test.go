package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/adapt"
	"repro/internal/buddy"
	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/offload"
	"repro/internal/telemetry"
)

// newTestMonitor builds a monitor over a small allocator with the
// sampler on and some deterministic traffic already applied.
func newTestMonitor(t *testing.T, ops int) (*monitor, *core.Thread) {
	t.Helper()
	rec := core.NewRecorder(telemetry.Config{SampleRate: 1})
	a := core.New(core.Config{
		Processors:   2,
		MagazineSize: 8,
		Telemetry:    rec,
		HeapConfig:   mem.Config{SegmentWordsLog2: 18, TotalWordsLog2: 28},
	})
	th := a.Thread()
	held := make([]mem.Ptr, 0, ops)
	for i := 0; i < ops; i++ {
		p, err := th.Malloc(uint64(8 + 16*(i%50)))
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, p)
	}
	for i, p := range held {
		if i%2 == 0 {
			th.Free(p)
		}
	}
	return newMonitor(rec, a, 16, 4), th
}

func get(t *testing.T, srv *httptest.Server, path string) (string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestEndpointsContentTypes checks every endpoint declares its media
// type explicitly.
func TestEndpointsContentTypes(t *testing.T) {
	m, _ := newTestMonitor(t, 100)
	m.sampleOnce()
	srv := httptest.NewServer(m.mux())
	defer srv.Close()

	for path, want := range map[string]string{
		"/":             "text/plain; charset=utf-8",
		"/stats.json":   "application/json",
		"/events":       "application/json",
		"/heap":         "application/json",
		"/census.json":  "application/json",
		"/series.json":  "application/json",
		"/adapt.json":   "application/json",
		"/offload.json": "application/json",
		"/metrics":      census.ContentType,
	} {
		_, ct := get(t, srv, path)
		if ct != want {
			t.Errorf("GET %s: Content-Type = %q, want %q", path, ct, want)
		}
	}
}

// TestMetricsEndpoint: /metrics must serve valid Prometheus text format
// with live census series (fragmentation, ages).
func TestMetricsEndpoint(t *testing.T) {
	m, _ := newTestMonitor(t, 200)
	srv := httptest.NewServer(m.mux())
	defer srv.Close()

	body, _ := get(t, srv, "/metrics")
	if err := census.ValidateMetrics([]byte(body)); err != nil {
		t.Fatalf("/metrics invalid: %v", err)
	}
	for _, want := range []string{
		"census_superblocks", "census_internal_frag_ratio",
		"census_external_frag_ratio", "census_live_age_seconds_bucket",
		"census_site_live_bytes", "alloc_ops_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestStreamEndpoint: /stream delivers a series point as an SSE data
// frame with census fields populated.
func TestStreamEndpoint(t *testing.T) {
	m, _ := newTestMonitor(t, 200)
	m.sampleOnce() // Last() exists, sent on connect
	srv := httptest.NewServer(m.mux())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var data string
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			data = strings.TrimPrefix(sc.Text(), "data: ")
			break
		}
	}
	if data == "" {
		t.Fatalf("no SSE data frame: %v", sc.Err())
	}
	var pt struct {
		Seq      uint64             `json:"seq"`
		Snapshot telemetry.Snapshot `json:"snapshot"`
		Census   *census.Census     `json:"census"`
		Delta    telemetry.Snapshot `json:"delta"`
	}
	if err := json.Unmarshal([]byte(data), &pt); err != nil {
		t.Fatalf("bad SSE JSON: %v", err)
	}
	if pt.Snapshot.Malloc.Count == 0 {
		t.Error("streamed snapshot has no mallocs")
	}
	if pt.Census == nil || pt.Census.Totals.Superblocks == 0 {
		t.Errorf("streamed census empty: %+v", pt.Census)
	}
	if pt.Census != nil && pt.Census.Ages.Count() == 0 {
		t.Error("streamed census has no live-age samples")
	}
}

// TestStatsBaseDelta: ?base=<seq> subtracts a series point, so the
// delta's op counts reflect only traffic after that point.
func TestStatsBaseDelta(t *testing.T) {
	m, th := newTestMonitor(t, 100)
	base := m.sampleOnce()

	const extra = 57
	held := make([]mem.Ptr, 0, extra)
	for i := 0; i < extra; i++ {
		p, err := th.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, p)
	}
	srv := httptest.NewServer(m.mux())
	defer srv.Close()

	body, _ := get(t, srv, fmt.Sprintf("/stats.json?base=%d", base.Seq))
	var delta telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &delta); err != nil {
		t.Fatal(err)
	}
	if delta.Malloc.Count != extra {
		t.Errorf("delta mallocs = %d, want %d", delta.Malloc.Count, extra)
	}

	// base=last resolves the newest point.
	body, _ = get(t, srv, "/stats.json?base=last")
	if err := json.Unmarshal([]byte(body), &delta); err != nil {
		t.Fatal(err)
	}
	if delta.Malloc.Count != extra {
		t.Errorf("base=last delta mallocs = %d, want %d", delta.Malloc.Count, extra)
	}

	// Bogus bases are a client error.
	for _, bad := range []string{"banana", "999999"} {
		resp, err := srv.Client().Get(srv.URL + "/stats.json?base=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("base=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	for _, p := range held {
		th.Free(p)
	}
}

// TestSeriesEndpoint: /series.json returns the sampled ring with
// per-interval deltas.
func TestSeriesEndpoint(t *testing.T) {
	m, th := newTestMonitor(t, 50)
	m.sampleOnce()
	p, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	th.Free(p)
	m.sampleOnce()
	srv := httptest.NewServer(m.mux())
	defer srv.Close()

	body, _ := get(t, srv, "/series.json")
	var pts []telemetry.SeriesPoint
	if err := json.Unmarshal([]byte(body), &pts); err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("series has %d points, want 2", len(pts))
	}
	if pts[1].Delta.Malloc.Count != 1 || pts[1].Delta.Free.Count != 1 {
		t.Errorf("second point delta = %d mallocs / %d frees, want 1/1",
			pts[1].Delta.Malloc.Count, pts[1].Delta.Free.Count)
	}
}

// TestAdaptDisabled: without -adapt, /adapt.json reports enabled=false
// and the dashboard carries no adapt section.
func TestAdaptDisabled(t *testing.T) {
	m, _ := newTestMonitor(t, 50)
	srv := httptest.NewServer(m.mux())
	defer srv.Close()
	body, _ := get(t, srv, "/adapt.json")
	var st struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Error("adapt reported enabled on a static monitor")
	}
	dash, _ := get(t, srv, "/")
	if strings.Contains(dash, "adapt:") {
		t.Error("dashboard shows an adapt section without a controller")
	}
}

// newAdaptMonitor builds a monitor whose allocator has the mutable
// policy surface and a controller with a few deterministic decisions
// already applied (driven via Step, never started).
func newAdaptMonitor(t *testing.T) *monitor {
	t.Helper()
	rec := core.NewRecorder(telemetry.Config{SampleRate: 1})
	a := core.New(core.Config{
		Processors:   2,
		MagazineSize: 8,
		Telemetry:    rec,
		Adapt:        true,
		HeapConfig:   mem.Config{SegmentWordsLog2: 18, TotalWordsLog2: 28},
	})
	th := a.Thread()
	for i := 0; i < 200; i++ {
		p, err := th.Malloc(uint64(8 + 16*(i%50)))
		if err != nil {
			t.Fatal(err)
		}
		th.Free(p)
	}
	ctrl, err := adapt.New(a, adapt.Config{Policy: &adapt.Exerciser{Caps: []int{16, 32}}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Step()
	ctrl.Step()
	m := newMonitor(rec, a, 16, 4)
	m.ctrl = ctrl
	return m
}

// TestAdaptEndpoints: with a controller attached, /adapt.json exposes
// the knob state and decision log, /metrics appends valid adapt
// families, and the dashboard gains the adapt section.
func TestAdaptEndpoints(t *testing.T) {
	m := newAdaptMonitor(t)
	srv := httptest.NewServer(m.mux())
	defer srv.Close()

	body, _ := get(t, srv, "/adapt.json")
	var st struct {
		Enabled      bool             `json:"enabled"`
		Steps        uint64           `json:"steps"`
		Decisions    uint64           `json:"decisions"`
		MagazineCaps []int            `json:"magazineCaps"`
		Log          []adapt.Decision `json:"log"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Steps != 2 || st.Decisions == 0 {
		t.Errorf("adapt state = %+v", st)
	}
	if len(st.MagazineCaps) == 0 || st.MagazineCaps[0] != 32 {
		t.Errorf("magazineCaps = %v, want exerciser's second cap 32", st.MagazineCaps)
	}
	if len(st.Log) == 0 || st.Log[len(st.Log)-1].To != 32 {
		t.Errorf("decision log = %+v", st.Log)
	}

	metrics, _ := get(t, srv, "/metrics")
	if err := census.ValidateMetrics([]byte(metrics)); err != nil {
		t.Fatalf("/metrics with adapt families invalid: %v", err)
	}
	for _, want := range []string{
		"adapt_controller_steps_total 2", "adapt_decisions_total",
		`adapt_magazine_cap{class="0"} 32`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	dash, _ := get(t, srv, "/")
	for _, want := range []string{"adapt: interval=", "magazine caps", "adapt: thread"} {
		if !strings.Contains(dash, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

// TestOffloadDisabled: without -offload, /offload.json reports
// enabled=false and the dashboard carries no offload section.
func TestOffloadDisabled(t *testing.T) {
	m, _ := newTestMonitor(t, 50)
	srv := httptest.NewServer(m.mux())
	defer srv.Close()
	body, _ := get(t, srv, "/offload.json")
	var st struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Error("offload reported enabled on a plain monitor")
	}
	dash, _ := get(t, srv, "/")
	if strings.Contains(dash, "offload:") {
		t.Error("dashboard shows an offload section without an engine")
	}
	metrics, _ := get(t, srv, "/metrics")
	if strings.Contains(metrics, "offload_") {
		t.Error("/metrics exposes offload families without an engine")
	}
}

// newOffloadMonitor builds a monitor whose workload runs through the
// allocation-core offload engine, with some traffic already applied.
func newOffloadMonitor(t *testing.T) *monitor {
	t.Helper()
	rec := core.NewRecorder(telemetry.Config{SampleRate: 1})
	a := core.New(core.Config{
		Processors: 2,
		Telemetry:  rec,
		Offload:    core.OffloadConfig{Cores: 1, Batch: 8},
		HeapConfig: mem.Config{SegmentWordsLog2: 18, TotalWordsLog2: 28},
	})
	eng := offload.New(a)
	w := eng.Worker()
	for i := 0; i < 500; i++ {
		p, err := w.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		w.Free(p)
	}
	t.Cleanup(func() {
		w.Unregister()
		eng.Stop()
	})
	m := newMonitor(rec, a, 16, 4)
	m.eng = eng
	return m
}

// TestOffloadEndpoints: with an engine attached, /offload.json exposes
// the counters, /metrics appends valid offload_* families, and the
// dashboard gains the offload section with the queue depth.
func TestOffloadEndpoints(t *testing.T) {
	m := newOffloadMonitor(t)
	srv := httptest.NewServer(m.mux())
	defer srv.Close()

	body, _ := get(t, srv, "/offload.json")
	var st struct {
		Enabled bool `json:"enabled"`
		Cores   int  `json:"cores"`
		Batch   int  `json:"batch"`
		Stats   struct {
			Submits   uint64
			StashHits uint64
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Cores != 1 || st.Batch != 8 {
		t.Errorf("offload state = %+v", st)
	}
	if st.Stats.Submits == 0 || st.Stats.StashHits == 0 {
		t.Errorf("offload counters empty: %+v", st.Stats)
	}

	metrics, _ := get(t, srv, "/metrics")
	if err := census.ValidateMetrics([]byte(metrics)); err != nil {
		t.Fatalf("/metrics with offload families invalid: %v", err)
	}
	for _, want := range []string{
		"offload_submits_total", "offload_stash_hits_total",
		"offload_queue_depth", "offload_live_cores 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	dash, _ := get(t, srv, "/")
	for _, want := range []string{"offload: cores=1", "queue depth=", "stash hit"} {
		if !strings.Contains(dash, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

// TestDashboardCensusSummary: the text dashboard includes the census
// lines.
func TestDashboardCensusSummary(t *testing.T) {
	m, _ := newTestMonitor(t, 100)
	srv := httptest.NewServer(m.mux())
	defer srv.Close()
	body, _ := get(t, srv, "/")
	for _, want := range []string{"census:", "frag: internal"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

// TestBuddyEndpoints: with -buddy attached, /census.json carries the
// buddy order table and /metrics appends valid buddy_* families.
func TestBuddyEndpoints(t *testing.T) {
	m, _ := newTestMonitor(t, 100)
	m.bud = buddy.New(buddy.Config{
		HeapConfig:    mem.Config{SegmentWordsLog2: 14, TotalWordsLog2: 22},
		TreeWordsLog2: 12,
	})
	bt := m.bud.Thread()
	var held []mem.Ptr
	for _, sz := range []uint64{8, 100, 1000, 20000} {
		p, err := bt.Malloc(sz)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, p)
	}
	srv := httptest.NewServer(m.mux())
	defer srv.Close()

	body, _ := get(t, srv, "/census.json")
	var c census.Census
	if err := json.Unmarshal([]byte(body), &c); err != nil {
		t.Fatal(err)
	}
	if c.Buddy == nil || len(c.Buddy.Orders) == 0 {
		t.Fatalf("/census.json has no buddy order table: %s", body)
	}
	var used uint64
	for _, o := range c.Buddy.Orders {
		used += o.Used
	}
	if used != uint64(len(held)) {
		t.Fatalf("buddy census counts %d used blocks, want %d", used, len(held))
	}

	metrics, _ := get(t, srv, "/metrics")
	if err := census.ValidateMetrics([]byte(metrics)); err != nil {
		t.Fatalf("/metrics with buddy families invalid: %v", err)
	}
	for _, want := range []string{"buddy_order_blocks", "buddy_external_frag_ratio", "buddy_trees"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	for _, p := range held {
		bt.Free(p)
	}
}
