// Command allocmon runs a continuous malloc/free workload on the
// lock-free allocator with the telemetry layer and allocation sampler
// attached, and serves live observability over HTTP: telemetry
// snapshots, heap censuses (fragmentation, live-block ages, call
// sites), a Prometheus scrape endpoint, and a server-sent-event stream
// of periodic samples.
//
//	allocmon [-addr :8723] [-threads 4] [-hyper] [-pause 50us]
//	         [-interval 1s] [-samplerate 1024] [-history 120] [-adapt]
//	         [-magazine N] [-arenas N] [-descstripes N]
//	         [-descalgo freelist|consttime] [-offload N] [-offloadbatch N]
//	         [-buddy]
//	allocmon -once [-warmup 2s]
//
// Endpoints:
//
//	/            text dashboard (telemetry snapshot + census summary,
//	             plus the adaptive controller's knobs and recent
//	             decisions under -adapt)
//	/stats.json  full telemetry snapshot as JSON; ?base=<seq|last>
//	             subtracts an earlier series point (interval delta)
//	/events      flight-recorder events only, as JSON
//	/heap        allocator + heap + hyperblock statistics as JSON
//	/census.json latest full heap census as JSON
//	/series.json the sampled census+snapshot ring, oldest first
//	/adapt.json  adaptive controller state: live knob values and the
//	             decision log ({"enabled":false} without -adapt)
//	/offload.json allocation-core offload engine state: cores, batch
//	             size, queue depth, and cumulative counters
//	             ({"enabled":false} without -offload)
//	/metrics     Prometheus text format (version 0.0.4)
//	/stream      server-sent events: one series point per sample tick
//
// -adapt builds the allocator with the runtime-mutable policy surface
// and runs an internal/adapt controller (default hysteresis policy) on
// the sampling interval; its decision log and live knob values appear
// on the dashboard, /adapt.json, and /metrics.
//
// -offload N routes the workload's malloc/free traffic through N
// dedicated allocation-core goroutines (internal/offload); the engine's
// queue depth, stash hit rate, and batch counters appear on the
// dashboard, /offload.json, and as offload_* Prometheus families.
//
// -buddy additionally runs the same churn on the non-blocking buddy
// allocator (internal/buddy); its per-order free/used block counts
// appear on the dashboard, as a "buddy" section in /census.json, and
// as buddy_* Prometheus families on /metrics.
//
// -once skips the server: it warms up, prints the text dashboard to
// stdout, and exits (useful for smoke tests).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/adapt"
	"repro/internal/bench"
	"repro/internal/buddy"
	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/offload"
	"repro/internal/telemetry"
)

// monitor owns the sampling loop and the HTTP surface, so tests can
// drive it through httptest without a listening socket or workload.
type monitor struct {
	rec    *telemetry.Recorder
	a      *core.Allocator
	series *telemetry.Series
	events int               // flight-recorder events on the text dashboard
	ctrl   *adapt.Controller // nil unless -adapt
	eng    *offload.Engine   // nil unless -offload
	bud    *buddy.Allocator  // nil unless -buddy

	mu   sync.Mutex
	subs map[chan telemetry.SeriesPoint]struct{}
}

func newMonitor(rec *telemetry.Recorder, a *core.Allocator, history, events int) *monitor {
	return &monitor{
		rec:    rec,
		a:      a,
		series: telemetry.NewSeries(history),
		events: events,
		subs:   make(map[chan telemetry.SeriesPoint]struct{}),
	}
}

// sampleOnce takes one snapshot+census pair, appends it to the series,
// and fans it out to /stream subscribers (dropping on slow consumers —
// the ring at /series.json is the lossless record).
func (m *monitor) sampleOnce() telemetry.SeriesPoint {
	snap := m.rec.Snapshot()
	snap.Events = nil // the series is numeric; /events serves the ring
	pt := m.series.Add(snap, m.census())
	m.mu.Lock()
	for ch := range m.subs {
		select {
		case ch <- pt:
		default:
		}
	}
	m.mu.Unlock()
	return pt
}

// census takes the core census and, under -buddy, attaches the buddy
// forest's order-occupancy section (served on /census.json, /series.json
// and rendered as buddy_* families on /metrics).
func (m *monitor) census() *census.Census {
	c := census.Take(m.a)
	if m.bud != nil {
		c.Buddy = census.TakeBuddy(m.bud)
	}
	return c
}

func (m *monitor) subscribe() chan telemetry.SeriesPoint {
	ch := make(chan telemetry.SeriesPoint, 8)
	m.mu.Lock()
	m.subs[ch] = struct{}{}
	m.mu.Unlock()
	return ch
}

func (m *monitor) unsubscribe(ch chan telemetry.SeriesPoint) {
	m.mu.Lock()
	delete(m.subs, ch)
	m.mu.Unlock()
}

// run samples every interval until stop closes.
func (m *monitor) run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.sampleOnce()
		}
	}
}

func (m *monitor) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, m.rec.Snapshot().Text(m.events))
		printHeapStats(w, m.a)
		c := m.census()
		printCensusSummary(w, c)
		printAdaptSummary(w, m.ctrl)
		printOffloadSummary(w, m.eng)
		printBuddySummary(w, c.Buddy)
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, r *http.Request) {
		snap := m.rec.Snapshot()
		if base := r.URL.Query().Get("base"); base != "" {
			pt, ok := m.basePoint(base)
			if !ok {
				http.Error(w, fmt.Sprintf("base %q: no such series point (retained: %d)", base, m.series.Len()),
					http.StatusBadRequest)
				return
			}
			snap = snap.Sub(pt.Snapshot)
		}
		data, err := snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		snap := m.rec.Snapshot()
		writeJSON(w, map[string]any{
			"eventsRecorded": snap.EventsRecorded,
			"events":         snap.Events,
		})
	})
	mux.HandleFunc("/heap", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"stats":          m.a.Stats(),
			"hyper":          m.a.HyperStats(),
			"descStripes":    m.a.DescStripes(),
			"descStripeFree": m.a.DescStripeFree(),
		})
	})
	mux.HandleFunc("/census.json", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, m.census())
	})
	mux.HandleFunc("/series.json", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, m.series.Points())
	})
	mux.HandleFunc("/adapt.json", func(w http.ResponseWriter, r *http.Request) {
		if m.ctrl == nil {
			writeJSON(w, map[string]any{"enabled": false})
			return
		}
		writeJSON(w, map[string]any{
			"enabled":      true,
			"intervalNS":   m.ctrl.Interval().Nanoseconds(),
			"steps":        m.ctrl.Steps(),
			"decisions":    m.ctrl.DecisionCount(),
			"magazineCaps": m.a.MagazineCaps(),
			"bindings":     m.a.ThreadBindings(),
			"log":          m.ctrl.Decisions(32),
		})
	})
	mux.HandleFunc("/offload.json", func(w http.ResponseWriter, r *http.Request) {
		if m.eng == nil {
			writeJSON(w, map[string]any{"enabled": false})
			return
		}
		writeJSON(w, map[string]any{
			"enabled": true,
			"cores":   m.eng.Cores(),
			"batch":   m.eng.Batch(),
			"stats":   m.eng.Stats(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", census.ContentType)
		snap := m.rec.Snapshot()
		if err := census.WriteMetrics(w, snap, m.census()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if m.ctrl != nil {
			writeAdaptMetrics(w, m.ctrl)
		}
		if m.eng != nil {
			writeOffloadMetrics(w, m.eng)
		}
	})
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		ch := m.subscribe()
		defer m.unsubscribe(ch)
		// Send the latest point immediately so a fresh client sees data
		// before the next tick.
		if last, ok := m.series.Last(); ok {
			if !sendEvent(w, fl, last) {
				return
			}
		}
		for {
			select {
			case <-r.Context().Done():
				return
			case pt := <-ch:
				if !sendEvent(w, fl, pt) {
					return
				}
			}
		}
	})
	return mux
}

// basePoint resolves a ?base= value: "last" for the newest series
// point, otherwise a series sequence number.
func (m *monitor) basePoint(base string) (telemetry.SeriesPoint, bool) {
	if base == "last" {
		return m.series.Last()
	}
	seq, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return telemetry.SeriesPoint{}, false
	}
	return m.series.Get(seq)
}

func sendEvent(w http.ResponseWriter, fl http.Flusher, pt telemetry.SeriesPoint) bool {
	data, err := json.Marshal(pt)
	if err != nil {
		return false
	}
	if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
		return false
	}
	fl.Flush()
	return true
}

func main() {
	var (
		addr       = flag.String("addr", ":8723", "HTTP listen address")
		threads    = flag.Int("threads", 4, "workload goroutines")
		hyper      = flag.Bool("hyper", false, "enable the hyperblock layer")
		pause      = flag.Duration("pause", 50*time.Microsecond, "sleep between workload ops (0 = full speed)")
		once       = flag.Bool("once", false, "print one dashboard after -warmup and exit (no server)")
		warmup     = flag.Duration("warmup", 2*time.Second, "workload warmup before -once prints")
		events     = flag.Int("events", 16, "flight-recorder events shown on the text dashboard")
		interval   = flag.Duration("interval", time.Second, "census sampling interval for /series.json and /stream")
		sampleRate = flag.Int("samplerate", 1024, "allocation sampling period (mallocs per sample, 0 = off)")
		history    = flag.Int("history", 120, "series points retained")
		withBuddy  = flag.Bool("buddy", false, "run a second churn on the non-blocking buddy allocator and expose its order census")
		af         = bench.RegisterAllocFlags(flag.CommandLine)
	)
	flag.Parse()

	rec := core.NewRecorder(telemetry.Config{SampleRate: *sampleRate})
	cfg, err := af.Apply(core.Config{
		Processors:  *threads,
		Hyperblocks: *hyper,
		Telemetry:   rec,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocmon: %v\n", err)
		os.Exit(1)
	}
	a := core.New(cfg)
	var eng *offload.Engine
	if cfg.Offload.Cores > 0 {
		eng = offload.New(a)
	}
	for g := 0; g < *threads; g++ {
		go churn(a, eng, int64(g), *pause)
	}

	m := newMonitor(rec, a, *history, *events)
	m.eng = eng
	if *withBuddy {
		m.bud = buddy.New(buddy.Config{Telemetry: rec.Stripes()})
		for g := 0; g < *threads; g++ {
			go buddyChurn(m.bud, int64(g), *pause)
		}
	}
	if cfg.Adapt {
		ctrl, err := adapt.New(a, adapt.Config{Interval: *interval})
		if err != nil {
			fmt.Fprintf(os.Stderr, "allocmon: %v\n", err)
			os.Exit(1)
		}
		ctrl.Start()
		m.ctrl = ctrl
	}

	if *once {
		time.Sleep(*warmup)
		fmt.Print(rec.Snapshot().Text(*events))
		printHeapStats(os.Stdout, a)
		c := m.census()
		printCensusSummary(os.Stdout, c)
		printAdaptSummary(os.Stdout, m.ctrl)
		printOffloadSummary(os.Stdout, eng)
		printBuddySummary(os.Stdout, c.Buddy)
		return
	}

	go m.run(*interval, make(chan struct{}))

	fmt.Printf("allocmon: %d workload threads (hyper=%v pause=%v samplerate=%d adapt=%v offload=%d), serving on %s\n",
		*threads, *hyper, *pause, *sampleRate, cfg.Adapt, cfg.Offload.Cores, *addr)
	if err := http.ListenAndServe(*addr, m.mux()); err != nil {
		fmt.Fprintf(os.Stderr, "allocmon: %v\n", err)
		os.Exit(1)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func printHeapStats(w interface{ Write([]byte) (int, error) }, a *core.Allocator) {
	s := a.Stats()
	fmt.Fprintf(w, "allocator: mallocs=%d frees=%d active=%d partial=%d newSB=%d\n",
		s.Ops.Mallocs, s.Ops.Frees, s.Ops.FromActive, s.Ops.FromPartial, s.Ops.FromNewSB)
	fmt.Fprintf(w, "heap: live %d KiB, max-live %d KiB, descriptors %d (+%d free)\n",
		s.Heap.LiveWords*8/1024, s.Heap.MaxLiveWords*8/1024,
		s.DescsAllocated, s.DescsOnFreelist)
	fmt.Fprintf(w, "desc pool: %s backend, %d stripes, free per stripe %v\n",
		a.DescAlgo(), a.DescStripes(), a.DescStripeFree())
}

func printCensusSummary(w interface{ Write([]byte) (int, error) }, c *census.Census) {
	s := c.Summary()
	fmt.Fprintf(w, "census: %d superblocks, blocks used=%d free=%d magazine=%d\n",
		s.Superblocks, s.BlocksUsed, s.BlocksFree, s.MagazineCached)
	if s.InternalFragPct >= 0 {
		fmt.Fprintf(w, "frag: internal %.1f%% external %.1f%%; %d live samples, age p50=%v p99=%v oldest=%v\n",
			s.InternalFragPct, s.ExternalFragPct, s.LiveSamples,
			time.Duration(s.AgeP50NS), time.Duration(s.AgeP99NS), time.Duration(s.OldestNS))
	} else {
		fmt.Fprintf(w, "frag: external %.1f%% (sampler off)\n", s.ExternalFragPct)
	}
}

// printAdaptSummary appends the adaptive controller's live knob values
// and most recent decisions to the text dashboard; no-op without
// -adapt.
func printAdaptSummary(w interface{ Write([]byte) (int, error) }, ctrl *adapt.Controller) {
	if ctrl == nil {
		return
	}
	a := ctrl.Allocator()
	fmt.Fprintf(w, "adapt: interval=%v steps=%d decisions=%d; magazine caps %v\n",
		ctrl.Interval(), ctrl.Steps(), ctrl.DecisionCount(), a.MagazineCaps())
	for _, b := range a.ThreadBindings() {
		fmt.Fprintf(w, "adapt: thread %d -> stripe=%d arena=%d\n", b.ID, b.Stripe, b.Arena)
	}
	for _, d := range ctrl.Decisions(8) {
		fmt.Fprintf(w, "adapt: %v\n", d)
	}
}

// writeAdaptMetrics appends the controller's Prometheus families after
// the census exposition (same text format; validated by the endpoint
// test with census.ValidateMetrics).
func writeAdaptMetrics(w interface{ Write([]byte) (int, error) }, ctrl *adapt.Controller) {
	fmt.Fprintf(w, "# HELP adapt_controller_steps_total Control steps executed by the adaptive controller.\n")
	fmt.Fprintf(w, "# TYPE adapt_controller_steps_total counter\n")
	fmt.Fprintf(w, "adapt_controller_steps_total %d\n", ctrl.Steps())
	fmt.Fprintf(w, "# HELP adapt_decisions_total Knob movements recorded in the decision log (applied or rejected).\n")
	fmt.Fprintf(w, "# TYPE adapt_decisions_total counter\n")
	fmt.Fprintf(w, "adapt_decisions_total %d\n", ctrl.DecisionCount())
	fmt.Fprintf(w, "# HELP adapt_magazine_cap Current per-class magazine capacity target.\n")
	fmt.Fprintf(w, "# TYPE adapt_magazine_cap gauge\n")
	for cls, cap := range ctrl.Allocator().MagazineCaps() {
		fmt.Fprintf(w, "adapt_magazine_cap{class=\"%d\"} %d\n", cls, cap)
	}
}

// printOffloadSummary appends the allocation-core offload engine's
// queue depth and cumulative counters to the text dashboard; no-op
// without -offload.
func printOffloadSummary(w interface{ Write([]byte) (int, error) }, eng *offload.Engine) {
	if eng == nil {
		return
	}
	st := eng.Stats()
	hitPct := 0.0
	if st.StashHits+st.StashMisses > 0 {
		hitPct = 100 * float64(st.StashHits) / float64(st.StashHits+st.StashMisses)
	}
	fmt.Fprintf(w, "offload: cores=%d (%d live) batch=%d queue depth=%d workers=%d\n",
		eng.Cores(), st.LiveCores, eng.Batch(), st.QueueDepth, st.Workers)
	fmt.Fprintf(w, "offload: %d submits, stash hit %.1f%%, %d fallbacks; refill %d batches/%d blocks, free %d batches/%d blocks\n",
		st.Submits, hitPct, st.Fallbacks,
		st.RefillBatches, st.RefillBlocks, st.FreeBatches, st.FreedBlocks)
}

// writeOffloadMetrics appends the offload engine's Prometheus families
// after the census (and adapt) exposition; same text format, validated
// by the endpoint test with census.ValidateMetrics.
func writeOffloadMetrics(w interface{ Write([]byte) (int, error) }, eng *offload.Engine) {
	st := eng.Stats()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("offload_submits_total", "Requests submitted to the allocation cores.", st.Submits)
	counter("offload_refill_batches_total", "Refill batches executed by allocation cores.", st.RefillBatches)
	counter("offload_refill_blocks_total", "Blocks delivered by refill batches.", st.RefillBlocks)
	counter("offload_free_batches_total", "Free batches executed by allocation cores.", st.FreeBatches)
	counter("offload_freed_blocks_total", "Blocks freed via batched requests.", st.FreedBlocks)
	counter("offload_stash_hits_total", "Worker mallocs served from the local stash.", st.StashHits)
	counter("offload_stash_misses_total", "Worker mallocs that missed the stash.", st.StashMisses)
	counter("offload_fallbacks_total", "Operations executed synchronously under queue backpressure.", st.Fallbacks)
	counter("offload_core_kills_total", "Allocation cores killed by fault injection.", st.CoreKills)
	counter("offload_adopted_blocks_total", "Blocks adopted from killed cores' in-flight batches.", st.AdoptedBlocks)
	gauge("offload_queue_depth", "Requests currently queued to the allocation cores.", int64(st.QueueDepth))
	gauge("offload_live_cores", "Allocation-core goroutines currently running.", int64(st.LiveCores))
	gauge("offload_workers", "Workers currently registered with the offload engine.", int64(st.Workers))
}

// printBuddySummary appends the buddy forest's order-occupancy table
// to the text dashboard; no-op without -buddy.
func printBuddySummary(w interface{ Write([]byte) (int, error) }, bc *census.BuddyCensus) {
	if bc == nil {
		return
	}
	fmt.Fprintf(w, "buddy: %d trees x %d words, frees coalesced to ext-frag %.1f%%, %d coal bits\n",
		bc.Trees, bc.TreeWords, 100*bc.ExternalFragRatio, bc.CoalBits)
	for _, o := range bc.Orders {
		if o.Free == 0 && o.Used == 0 {
			continue
		}
		fmt.Fprintf(w, "buddy: order %d (%d words): free=%d used=%d\n",
			o.Order, o.BlockWords, o.Free, o.Used)
	}
}

// buddyChurn mirrors churn on the buddy allocator: random mixed-size
// traffic with a bounded live set, including occasional blocks big
// enough to span several orders.
func buddyChurn(b *buddy.Allocator, seed int64, pause time.Duration) {
	th := b.Thread()
	rng := rand.New(rand.NewSource(seed))
	var held []mem.Ptr
	for i := 0; ; i++ {
		if len(held) > 0 && (rng.Intn(2) == 0 || len(held) > 128) {
			k := rng.Intn(len(held))
			th.Free(held[k])
			held[k] = held[len(held)-1]
			held = held[:len(held)-1]
		} else {
			sz := uint64(8 << rng.Intn(9))
			if rng.Intn(200) == 0 {
				sz = 4096 + uint64(rng.Intn(16384))
			}
			p, err := th.Malloc(sz)
			if err != nil {
				fmt.Fprintf(os.Stderr, "allocmon: buddy malloc: %v\n", err)
				os.Exit(1)
			}
			held = append(held, p)
		}
		if pause > 0 && i%64 == 0 {
			time.Sleep(pause)
		}
	}
}

// churn is the embedded workload: random-size malloc/free traffic with
// a bounded live set, the same shape as mlfstress.
func churn(a *core.Allocator, eng *offload.Engine, seed int64, pause time.Duration) {
	var th interface {
		Malloc(uint64) (mem.Ptr, error)
		Free(mem.Ptr)
	}
	if eng != nil {
		th = eng.Worker()
	} else {
		th = a.Thread()
	}
	rng := rand.New(rand.NewSource(seed))
	var held []mem.Ptr
	for i := 0; ; i++ {
		if len(held) > 0 && (rng.Intn(2) == 0 || len(held) > 128) {
			k := rng.Intn(len(held))
			th.Free(held[k])
			held[k] = held[len(held)-1]
			held = held[:len(held)-1]
		} else {
			sz := uint64(8 << rng.Intn(9))
			if rng.Intn(200) == 0 {
				sz = 4096 + uint64(rng.Intn(16384))
			}
			p, err := th.Malloc(sz)
			if err != nil {
				fmt.Fprintf(os.Stderr, "allocmon: malloc: %v\n", err)
				os.Exit(1)
			}
			held = append(held, p)
		}
		if pause > 0 && i%64 == 0 {
			time.Sleep(pause)
		}
	}
}
