// Command allocmon runs a continuous malloc/free workload on the
// lock-free allocator with the telemetry layer attached and serves the
// live telemetry over HTTP (expvar-style), so contention counters,
// latency histograms, and the flight recorder can be watched while the
// allocator runs.
//
//	allocmon [-addr :8723] [-threads 4] [-hyper] [-pause 50us]
//	allocmon -once [-warmup 2s]
//
// Endpoints:
//
//	/            text dashboard (telemetry snapshot + allocator stats)
//	/stats.json  full telemetry snapshot as JSON
//	/events      flight-recorder events only, as JSON
//	/heap        allocator + heap + hyperblock statistics as JSON
//
// -once skips the server: it warms up, prints the text dashboard to
// stdout, and exits (useful for smoke tests).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", ":8723", "HTTP listen address")
		threads = flag.Int("threads", 4, "workload goroutines")
		hyper   = flag.Bool("hyper", false, "enable the hyperblock layer")
		pause   = flag.Duration("pause", 50*time.Microsecond, "sleep between workload ops (0 = full speed)")
		once    = flag.Bool("once", false, "print one dashboard after -warmup and exit (no server)")
		warmup  = flag.Duration("warmup", 2*time.Second, "workload warmup before -once prints")
		events  = flag.Int("events", 16, "flight-recorder events shown on the text dashboard")
	)
	flag.Parse()

	rec := core.NewRecorder(telemetry.Config{})
	a := core.New(core.Config{
		Processors:  *threads,
		Hyperblocks: *hyper,
		Telemetry:   rec,
	})
	for g := 0; g < *threads; g++ {
		go churn(a, int64(g), *pause)
	}

	if *once {
		time.Sleep(*warmup)
		fmt.Print(rec.Snapshot().Text(*events))
		printHeapStats(os.Stdout, a)
		return
	}

	http.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rec.Snapshot().Text(*events))
		printHeapStats(w, a)
	})
	http.HandleFunc("/stats.json", func(w http.ResponseWriter, r *http.Request) {
		data, err := rec.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
	http.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		snap := rec.Snapshot()
		writeJSON(w, map[string]any{
			"eventsRecorded": snap.EventsRecorded,
			"events":         snap.Events,
		})
	})
	http.HandleFunc("/heap", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"stats":          a.Stats(),
			"hyper":          a.HyperStats(),
			"descStripes":    a.DescStripes(),
			"descStripeFree": a.DescStripeFree(),
		})
	})

	fmt.Printf("allocmon: %d workload threads (hyper=%v pause=%v), serving on %s\n",
		*threads, *hyper, *pause, *addr)
	if err := http.ListenAndServe(*addr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "allocmon: %v\n", err)
		os.Exit(1)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func printHeapStats(w interface{ Write([]byte) (int, error) }, a *core.Allocator) {
	s := a.Stats()
	fmt.Fprintf(w, "allocator: mallocs=%d frees=%d active=%d partial=%d newSB=%d\n",
		s.Ops.Mallocs, s.Ops.Frees, s.Ops.FromActive, s.Ops.FromPartial, s.Ops.FromNewSB)
	fmt.Fprintf(w, "heap: live %d KiB, max-live %d KiB, descriptors %d (+%d free)\n",
		s.Heap.LiveWords*8/1024, s.Heap.MaxLiveWords*8/1024,
		s.DescsAllocated, s.DescsOnFreelist)
	fmt.Fprintf(w, "desc pool: %d stripes, free per stripe %v\n",
		a.DescStripes(), a.DescStripeFree())
}

// churn is the embedded workload: random-size malloc/free traffic with
// a bounded live set, the same shape as mlfstress.
func churn(a *core.Allocator, seed int64, pause time.Duration) {
	th := a.Thread()
	rng := rand.New(rand.NewSource(seed))
	var held []mem.Ptr
	for i := 0; ; i++ {
		if len(held) > 0 && (rng.Intn(2) == 0 || len(held) > 128) {
			k := rng.Intn(len(held))
			th.Free(held[k])
			held[k] = held[len(held)-1]
			held = held[:len(held)-1]
		} else {
			sz := uint64(8 << rng.Intn(9))
			if rng.Intn(200) == 0 {
				sz = 4096 + uint64(rng.Intn(16384))
			}
			p, err := th.Malloc(sz)
			if err != nil {
				fmt.Fprintf(os.Stderr, "allocmon: malloc: %v\n", err)
				os.Exit(1)
			}
			held = append(held, p)
		}
		if pause > 0 && i%64 == 0 {
			time.Sleep(pause)
		}
	}
}
