// Command heapinfo prints the allocator's compile-time geometry: the
// size-class table (payload, block words, blocks per superblock), the
// packed-word layouts of Figure 3, and the large-allocation threshold.
// Useful for sanity-checking configuration against the paper.
//
//	heapinfo
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/atomicx"
	"repro/internal/mem"
	"repro/internal/sizeclass"
)

func main() {
	fmt.Println("Packed word layouts (paper Figure 3):")
	fmt.Printf("  anchor: avail:%d count:%d state:%d tag:%d (bits)\n",
		atomicx.AnchorAvailBits, atomicx.AnchorCountBits,
		atomicx.AnchorStateBits, atomicx.AnchorTagBits)
	fmt.Printf("  active: ptr:%d credits:%d  (MAXCREDITS=%d)\n",
		atomicx.ActivePtrBits, atomicx.ActiveCreditsBits, atomicx.MaxCredits)
	fmt.Printf("  tagged index: idx:%d tag:%d\n\n",
		atomicx.TaggedIdxBits, atomicx.TaggedTagBits)

	fmt.Printf("Superblock: %d words (%d KiB); word = %d bytes (block prefix)\n",
		sizeclass.SuperblockWords, sizeclass.SuperblockWords*mem.WordBytes/1024, mem.WordBytes)
	fmt.Printf("Large-allocation threshold: > %d payload bytes -> direct OS region\n\n",
		sizeclass.MaxPayloadBytes)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "class\tpayload B\tblock words\tblocks/SB\twaste/SB words\t")
	for _, c := range sizeclass.All() {
		waste := c.SBWords - c.MaxCount*c.BlockWords
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t\n",
			c.Index, c.PayloadBytes, c.BlockWords, c.MaxCount, waste)
	}
	w.Flush()
}
