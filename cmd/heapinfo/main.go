// Command heapinfo prints the allocator's compile-time geometry: the
// size-class table (payload, block words, blocks per superblock), the
// packed-word layouts of Figure 3, and the large-allocation threshold.
// Useful for sanity-checking configuration against the paper.
//
//	heapinfo [-live] [-threads 4] [-ops 50000] [-arenas N] [-samplerate 1024]
//	heapinfo -live -buddy
//
// With -live, a short multithreaded malloc/free workload is run on a
// fresh allocator (hyperblock layer enabled) and the resulting live
// statistics are printed: Allocator.Stats, heap and hyperblock
// counters, a per-arena breakdown of the OS layer with region-bin
// occupancy, the telemetry snapshot, and a heap census taken while the
// workload's final live set is still held — per-class superblock
// states and block inventory, internal/external fragmentation,
// live-block age quantiles, and the call sites holding the most live
// bytes. -arenas overrides the region-arena count (0 = one per
// processor heap, 1 = unsharded); -samplerate sets the allocation
// sampling period (0 = sampler off).
//
// With -buddy, the -live workload runs on the non-blocking buddy
// allocator (internal/buddy) instead, and the census printed is its
// per-order free/used block table with the external-fragmentation
// ratio.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/atomicx"
	"repro/internal/buddy"
	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sizeclass"
	"repro/internal/telemetry"
)

func main() {
	var (
		live    = flag.Bool("live", false, "run a short workload and print live allocator statistics")
		threads = flag.Int("threads", 4, "workload goroutines (-live)")
		ops     = flag.Int("ops", 50000, "operations per goroutine (-live)")
		arenas  = flag.Int("arenas", 0, "region arenas (-live; 0 = one per processor, 1 = unsharded)")
		rate    = flag.Int("samplerate", 1024, "allocation sampling period for the census (-live; 0 = off)")
		useBud  = flag.Bool("buddy", false, "run the -live workload on the non-blocking buddy allocator")
	)
	flag.Parse()
	fmt.Println("Packed word layouts (paper Figure 3):")
	fmt.Printf("  anchor: avail:%d count:%d state:%d tag:%d (bits)\n",
		atomicx.AnchorAvailBits, atomicx.AnchorCountBits,
		atomicx.AnchorStateBits, atomicx.AnchorTagBits)
	fmt.Printf("  active: ptr:%d credits:%d  (MAXCREDITS=%d)\n",
		atomicx.ActivePtrBits, atomicx.ActiveCreditsBits, atomicx.MaxCredits)
	fmt.Printf("  tagged index: idx:%d tag:%d\n\n",
		atomicx.TaggedIdxBits, atomicx.TaggedTagBits)

	fmt.Printf("Superblock: %d words (%d KiB); word = %d bytes (block prefix)\n",
		sizeclass.SuperblockWords, sizeclass.SuperblockWords*mem.WordBytes/1024, mem.WordBytes)
	fmt.Printf("Large-allocation threshold: > %d payload bytes -> direct OS region\n\n",
		sizeclass.MaxPayloadBytes)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "class\tpayload B\tblock words\tblocks/SB\twaste/SB words\t")
	for _, c := range sizeclass.All() {
		waste := c.SBWords - c.MaxCount*c.BlockWords
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t\n",
			c.Index, c.PayloadBytes, c.BlockWords, c.MaxCount, waste)
	}
	w.Flush()

	if *live {
		fmt.Println()
		if *useBud {
			runLiveBuddy(*threads, *ops)
		} else {
			runLive(*threads, *ops, *arenas, *rate)
		}
	}
}

// runLive exercises a fresh allocator and prints its live statistics:
// operation counters, heap/hyperblock state, the telemetry snapshot
// (contention, latency, flight-recorder tail), and a census taken in
// the window between churn finishing and the workers releasing their
// final live sets — so the census has real live blocks to inventory.
func runLive(threads, ops, arenas, rate int) {
	rec := core.NewRecorder(telemetry.Config{SampleRate: rate})
	a := core.New(core.Config{
		Processors:  threads,
		HeapConfig:  mem.Config{Arenas: arenas},
		Hyperblocks: true,
		Telemetry:   rec,
	})
	var wg, churnDone sync.WaitGroup
	censusReady := make(chan struct{})
	for g := 0; g < threads; g++ {
		wg.Add(1)
		churnDone.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := a.Thread()
			rng := rand.New(rand.NewSource(seed))
			var held []mem.Ptr
			for i := 0; i < ops; i++ {
				if len(held) > 0 && (rng.Intn(2) == 0 || len(held) > 64) {
					k := rng.Intn(len(held))
					th.Free(held[k])
					held[k] = held[len(held)-1]
					held = held[:len(held)-1]
					continue
				}
				sz := uint64(8 << rng.Intn(9))
				p, err := th.Malloc(sz)
				if err != nil {
					fmt.Fprintf(os.Stderr, "heapinfo: malloc: %v\n", err)
					os.Exit(1)
				}
				held = append(held, p)
			}
			churnDone.Done()
			<-censusReady // hold the live set while the census walks
			for _, p := range held {
				th.Free(p)
			}
		}(int64(g))
	}
	churnDone.Wait()
	c := census.Take(a)
	close(censusReady)
	wg.Wait()

	s := a.Stats()
	fmt.Printf("Live statistics (%d threads x %d ops, hyperblocks on):\n", threads, ops)
	fmt.Printf("  ops: %d mallocs / %d frees (large %d/%d)\n",
		s.Ops.Mallocs, s.Ops.Frees, s.Ops.LargeMallocs, s.Ops.LargeFrees)
	fmt.Printf("  malloc paths: active=%d partial=%d newSB=%d raceLoss=%d\n",
		s.Ops.FromActive, s.Ops.FromPartial, s.Ops.FromNewSB, s.Ops.NewSBRaceLoss)
	fmt.Printf("  superblocks freed: %d; empty-partial skips: %d\n",
		s.Ops.EmptySBFreed, s.Ops.EmptyPartialSkips)
	fmt.Printf("  descriptors: %d allocated, %d on freelist\n",
		s.DescsAllocated, s.DescsOnFreelist)
	fmt.Printf("  desc pool: %s backend, %d stripes, free per stripe %v\n",
		a.DescAlgo(), a.DescStripes(), a.DescStripeFree())
	fmt.Printf("  heap: %d words live, max-live %d KiB, %d region allocs / %d frees\n",
		s.Heap.LiveWords, s.Heap.MaxLiveWords*8/1024, s.Heap.RegionAllocs, s.Heap.RegionFrees)
	hs := a.HyperStats()
	fmt.Printf("  hyperblocks: %d allocated, %d released, %d SB allocs / %d frees\n",
		hs.HyperAllocs, hs.HyperReleases, hs.Allocs, hs.Frees)

	fmt.Printf("\nRegion arenas (%d):\n", a.Heap().Arenas())
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "arena\treserved\tlive\tskipped\tallocs\tfrees\treused\tsteals\t")
	for i, as := range s.Heap.Arenas {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			i, as.ReservedWords, as.LiveWords, as.SkippedWords,
			as.RegionAllocs, as.RegionFrees, as.ReusedRegions, as.Steals)
	}
	w.Flush()
	fmt.Println("(words; allocs/reused/steals are request-side, the rest partition-side)")

	if bins := a.Heap().RegionBins(); len(bins) > 0 {
		fmt.Println("\nRegion-bin occupancy (free regions awaiting reuse):")
		w = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(w, "arena\tregion words\tregions\t")
		for _, b := range bins {
			fmt.Fprintf(w, "%d\t%d\t%d\t\n", b.Arena, b.RegionWords, b.Regions)
		}
		w.Flush()
	} else {
		fmt.Println("\nRegion bins: empty (no free regions awaiting reuse)")
	}
	printCensus(c)
	fmt.Println()
	fmt.Print(rec.Snapshot().Text(8))
}

// runLiveBuddy exercises a fresh buddy allocator with the same shape
// of workload and prints its statistics and order-occupancy census:
// per-order free/used block counts taken while the final live sets are
// still held, then again after the drain (when coalescing must have
// rebuilt whole-tree blocks).
func runLiveBuddy(threads, ops int) {
	a := buddy.New(buddy.Config{})
	var wg, churnDone sync.WaitGroup
	censusReady := make(chan struct{})
	for g := 0; g < threads; g++ {
		wg.Add(1)
		churnDone.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := a.Thread()
			rng := rand.New(rand.NewSource(seed))
			var held []mem.Ptr
			for i := 0; i < ops; i++ {
				if len(held) > 0 && (rng.Intn(2) == 0 || len(held) > 64) {
					k := rng.Intn(len(held))
					th.Free(held[k])
					held[k] = held[len(held)-1]
					held = held[:len(held)-1]
					continue
				}
				sz := uint64(8 << rng.Intn(9))
				if rng.Intn(100) == 0 {
					sz = 4096 + uint64(rng.Intn(65536))
				}
				p, err := th.Malloc(sz)
				if err != nil {
					fmt.Fprintf(os.Stderr, "heapinfo: buddy malloc: %v\n", err)
					os.Exit(1)
				}
				held = append(held, p)
			}
			churnDone.Done()
			<-censusReady // hold the live set while the census walks
			for _, p := range held {
				th.Free(p)
			}
		}(int64(g))
	}
	churnDone.Wait()
	held := census.TakeBuddy(a)
	close(censusReady)
	wg.Wait()
	drained := census.TakeBuddy(a)

	s := a.Stats()
	fmt.Printf("Buddy live statistics (%d threads x %d ops):\n", threads, ops)
	fmt.Printf("  ops: %d mallocs / %d frees (beyond-tree %d/%d)\n",
		s.Mallocs, s.Frees, s.LargeMallocs, s.LargeFrees)
	fmt.Printf("  trees: %d x %d words (leaf %d words); %d grown, %d lost races\n",
		s.Trees, s.TreeWords, s.MinBlockWords, s.Grows, s.GrowRaces)
	fmt.Printf("  alloc paths: %d hint hits, %d level scans\n", s.HintHits, s.Scans)

	printBuddyCensus("with workload live sets held", held)
	printBuddyCensus("after drain (fully coalesced)", drained)
}

// printBuddyCensus renders one order-occupancy table.
func printBuddyCensus(when string, bc *census.BuddyCensus) {
	fmt.Printf("\nBuddy order census (%s): ext frag %.1f%%, %d coal bits\n",
		when, 100*bc.ExternalFragRatio, bc.CoalBits)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "order\tblock words\tfree\tused\t")
	for _, o := range bc.Orders {
		if o.Free == 0 && o.Used == 0 {
			continue
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t\n", o.Order, o.BlockWords, o.Free, o.Used)
	}
	w.Flush()
}

// printCensus renders the heap census taken at peak liveness: per-class
// and per-arena inventory, fragmentation, live-block ages, and the top
// call sites by live bytes.
func printCensus(c *census.Census) {
	fmt.Println("\nHeap census (taken with workload live sets held):")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "class\tA\tF\tP\tE\tused\tfree\tresv\tmag\tpartial\tint frag\t")
	for _, cc := range c.Classes {
		if cc.Superblocks == [4]uint64{} && cc.MagazineCached == 0 {
			continue
		}
		frag := "-"
		if cc.SampledLive > 0 {
			frag = fmt.Sprintf("%.1f%%", 100*cc.InternalFragRatio)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t\n",
			cc.Class,
			cc.Superblocks[atomicx.StateActive], cc.Superblocks[atomicx.StateFull],
			cc.Superblocks[atomicx.StatePartial], cc.Superblocks[atomicx.StateEmpty],
			cc.BlocksUsed, cc.BlocksFree, cc.BlocksReserved,
			cc.MagazineCached, cc.PartialList, frag)
	}
	w.Flush()
	fmt.Printf("totals: %d superblocks, blocks used=%d free=%d resv=%d mag=%d, carve waste %d words\n",
		c.Totals.Superblocks, c.Totals.BlocksUsed, c.Totals.BlocksFree,
		c.Totals.BlocksReserved, c.Totals.MagazineCached, c.Totals.CarveWasteWords)

	fmt.Println("\nArena census (bump occupancy and external fragmentation):")
	w = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "arena\treserved\tfree regions\tfree words\toccupancy\text frag\t")
	for _, ac := range c.Arenas {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.1f%%\t%.1f%%\t\n",
			ac.Arena, ac.ReservedWords, ac.FreeRegions, ac.FreeWords,
			100*ac.BumpOccupancy, 100*ac.ExternalFragRatio)
	}
	w.Flush()

	if !c.Sampler.Enabled {
		fmt.Println("\nAllocation sampler off (-samplerate 0): no age or call-site census")
		return
	}
	fmt.Printf("\nLive-block ages (%d samples at rate 1/%d): p50=%v p99=%v oldest=%v\n",
		c.Ages.Count(), c.Sampler.Rate,
		time.Duration(c.AgeP50NS), time.Duration(c.AgeP99NS), time.Duration(c.OldestNS))
	if c.Totals.InternalFragRatio >= 0 {
		fmt.Printf("sampled internal fragmentation: %.1f%% (external %.1f%%)\n",
			100*c.Totals.InternalFragRatio, 100*c.Totals.ExternalFragRatio)
	}
	if len(c.Sites) > 0 {
		fmt.Println("\nTop call sites by live sampled bytes:")
		w = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(w, "live\tbytes\toldest\tsite\t")
		for i, sc := range c.Sites {
			if i == 5 {
				break
			}
			site := sc.Func
			if site == "" {
				site = fmt.Sprintf("pc=%#x", sc.PC)
			} else {
				site = fmt.Sprintf("%s (%s:%d)", sc.Func, sc.File, sc.Line)
			}
			fmt.Fprintf(w, "%d\t%d\t%v\t%s\t\n",
				sc.Live, sc.LiveBytes, time.Duration(sc.OldestNS), site)
		}
		w.Flush()
	}
}
