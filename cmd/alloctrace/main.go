// Command alloctrace generates, inspects, and replays allocation
// traces against the four allocators.
//
//	alloctrace gen  -pattern private|prodcons|bursty -events N -threads T -o trace.bin
//	alloctrace info -i trace.bin
//	alloctrace run  -i trace.bin [-allocs lockfree,hoard,ptmalloc,serial]
//
// Replays are deterministic (a total order of events), so a trace that
// exposes a bug replays it identically every time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/alloc"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: alloctrace gen|info|run [flags]")
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	pattern := fs.String("pattern", "private", "private|prodcons|bursty")
	events := fs.Int("events", 100000, "trace length")
	threads := fs.Int("threads", 4, "thread count")
	seed := fs.Int64("seed", 1, "PRNG seed")
	minSize := fs.Uint64("min", 8, "min payload bytes")
	maxSize := fs.Uint64("max", 256, "max payload bytes")
	out := fs.String("o", "trace.bin", "output file")
	fs.Parse(args)

	var p trace.Pattern
	switch *pattern {
	case "private":
		p = trace.Private
	case "prodcons":
		p = trace.ProducerConsumer
	case "bursty":
		p = trace.Bursty
	default:
		fatal("unknown pattern %q", *pattern)
	}
	tr := trace.Generate(trace.GenConfig{
		Threads: *threads,
		Events:  *events,
		Seed:    *seed,
		Pattern: p,
		MinSize: *minSize,
		MaxSize: *maxSize,
	})
	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		fatal("write: %v", err)
	}
	s := tr.Stats()
	fmt.Printf("wrote %s: %d events (%d mallocs, %d frees), max live %d blocks / %d bytes\n",
		*out, s.Events, s.Mallocs, s.Frees, s.MaxLive, s.MaxBytes)
}

func loadTrace(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal("read %s: %v", path, err)
	}
	return tr
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "trace.bin", "input file")
	fs.Parse(args)
	tr := loadTrace(*in)
	s := tr.Stats()
	fmt.Printf("trace %s:\n  threads  %d\n  events   %d\n  mallocs  %d\n  frees    %d\n",
		*in, tr.Threads, s.Events, s.Mallocs, s.Frees)
	fmt.Printf("  max live %d blocks, %d bytes\n  end live %d blocks\n",
		s.MaxLive, s.MaxBytes, s.EndLive)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	in := fs.String("i", "trace.bin", "input file")
	allocs := fs.String("allocs", "", "comma-separated allocators (default all)")
	procs := fs.Int("procs", 0, "processor heaps (default trace threads)")
	fs.Parse(args)
	tr := loadTrace(*in)

	names := alloc.Names()
	if *allocs != "" {
		names = strings.Split(*allocs, ",")
	}
	p := *procs
	if p == 0 {
		p = tr.Threads
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "allocator\tevents/s\tmax live B\t")
	for _, name := range names {
		a, err := alloc.New(name, alloc.Options{Processors: p})
		if err != nil {
			fatal("%v", err)
		}
		res, err := trace.Replay(tr, a)
		if err != nil {
			fatal("replay on %s: %v", name, err)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%d\t\n", name, res.EventsPerSec(), res.MaxLiveBytes)
	}
	w.Flush()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "alloctrace: "+format+"\n", args...)
	os.Exit(1)
}
