// Command benchmal regenerates the tables and figures of the paper's
// evaluation section (§4) over the four allocators in this repository.
//
// Usage:
//
//	benchmal [-exp all|table1|fig8a..fig8h|latency|space|unip|ablate|magazine|arenas|poolstripes|poolalgo|census|adapt|offload]
//	         [-threads 1,2,4,8,16] [-scale 0.01] [-allocs lockfree,hoard,...]
//	         [-procs N] [-telemetry] [-magazine N] [-arenas N] [-descstripes N]
//	         [-descalgo freelist|consttime] [-adapt] [-offload N] [-offloadbatch N]
//	         [-samplerate N] [-json] [-list] [-v]
//
// -scale 1.0 runs the paper's full parameters (10M malloc/free pairs
// per thread, 30-second timed phases); the default 0.01 finishes each
// experiment in seconds and preserves the qualitative shape.
//
// -telemetry (default on) attaches the lock-free observability layer
// to every lock-free allocator, so each measurement line carries CAS
// retries/op and malloc latency quantiles; -telemetry=false measures
// the bare allocator. -magazine N enables the thread-local magazine
// layer (Config.MagazineSize=N) on every lock-free allocator; the
// magazine experiment compares off/on regardless of this flag.
// -arenas N shards every allocator's OS layer into N region arenas
// (0 = one per processor heap, the default; 1 = the unsharded global
// layout); the arenas experiment compares 1 vs per-processor
// regardless of this flag. -descstripes N likewise sets the
// descriptor-pool freelist stripe count on every lock-free allocator
// (0 = one per processor, 1 = the paper's single DescAvail list); the
// poolstripes experiment compares 1 vs per-processor regardless of
// this flag. -descalgo selects the descriptor pool's recycling backend
// (freelist = the paper's Figure-7 tagged freelist, consttime = the
// Blelloch-Wei constant-time batch scheme); the poolalgo experiment
// compares the two regardless of this flag. -adapt builds every
// lock-free allocator with the runtime-mutable policy surface and runs
// an adaptive controller (internal/adapt) beside each measurement; the
// adapt experiment compares static vs adaptive regardless of this
// flag. -offload N routes every lock-free allocator's malloc/free
// traffic through N dedicated allocation-core goroutines
// (internal/offload); -offloadbatch sets the request batch size; the
// offload experiment compares magazines vs offload regardless of
// these flags. -samplerate N enables the allocation sampler (one sample
// per N mallocs) on every telemetry recorder, adding a census digest —
// fragmentation and live-block ages — to each measurement (0 = off,
// the default, preserving the bare telemetry cost); the census
// experiment compares off/on regardless of this flag. -json
// additionally writes every individual measurement to a
// BENCH_<unixtime>.json file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/report"
)

// jsonReport is the schema of the BENCH_*.json file: run parameters
// plus every individual measurement in the order taken.
type jsonReport struct {
	TakenUnixNano int64          `json:"takenUnixNano"`
	GoMaxProcs    int            `json:"gomaxprocs"`
	NumCPU        int            `json:"numcpu"`
	Scale         float64        `json:"scale"`
	Threads       []int          `json:"threads"`
	Experiments   []string       `json:"experiments"`
	Telemetry     bool           `json:"telemetry"`
	Magazine      int            `json:"magazine,omitempty"`
	Arenas        int            `json:"arenas,omitempty"`
	DescStripes   int            `json:"descStripes,omitempty"`
	DescAlgo      string         `json:"descAlgo,omitempty"`
	Adapt         bool           `json:"adapt,omitempty"`
	Offload       int            `json:"offload,omitempty"`
	OffloadBatch  int            `json:"offloadBatch,omitempty"`
	SampleRate    int            `json:"sampleRate,omitempty"`
	Results       []bench.Result `json:"results"`
}

func main() {
	var (
		expFlag     = flag.String("exp", "all", "experiment id (or comma list, or 'all')")
		threadsFlag = flag.String("threads", "1,2,4,8,16", "comma-separated thread counts")
		scaleFlag   = flag.Float64("scale", 0.01, "fraction of the paper's full parameters (1.0 = full)")
		allocsFlag  = flag.String("allocs", "", "comma-separated allocators (default: all)")
		procsFlag   = flag.Int("procs", 0, "processor heaps per allocator (default: max threads)")
		teleFlag    = flag.Bool("telemetry", true, "attach the telemetry layer to lock-free allocators (retries/op and latency per row)")
		allocFlags  = bench.RegisterAllocFlags(flag.CommandLine)
		rateFlag    = flag.Int("samplerate", 0, "allocation sampling period for census columns (0 = sampler off)")
		jsonFlag    = flag.Bool("json", false, "write all measurements to a BENCH_<unixtime>.json file")
		listFlag    = flag.Bool("list", false, "list experiments and exit")
		verboseFlag = flag.Bool("v", false, "print every individual measurement")
	)
	flag.Parse()

	descAlgo, err := allocFlags.DescAlgo()
	if err != nil {
		fatal("%v", err)
	}

	if *listFlag {
		for _, e := range report.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	threads, err := parseInts(*threadsFlag)
	if err != nil {
		fatal("invalid -threads: %v", err)
	}
	cfg := report.RunConfig{
		Threads:     threads,
		Scale:       *scaleFlag,
		Processors:  *procsFlag,
		Telemetry:   *teleFlag,
		Magazine:    *allocFlags.Magazine,
		Arenas:      *allocFlags.Arenas,
		DescStripes: *allocFlags.DescStripes,
		DescAlgo:    descAlgo,
		Adapt:       *allocFlags.Adapt,
		Offload:     core.OffloadConfig{Cores: *allocFlags.Offload, Batch: *allocFlags.OffloadBatch},
		SampleRate:  *rateFlag,
	}
	if *allocsFlag != "" {
		cfg.Allocators = strings.Split(*allocsFlag, ",")
	}

	var results []bench.Result
	if *jsonFlag {
		cfg.Record = func(r bench.Result) { results = append(results, r) }
	}

	var ids []string
	if *expFlag == "all" {
		for _, e := range report.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	fmt.Printf("benchmal: GOMAXPROCS=%d NumCPU=%d scale=%g threads=%v\n\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), *scaleFlag, threads)

	for _, id := range ids {
		e, ok := report.ByID(strings.TrimSpace(id))
		if !ok {
			fatal("unknown experiment %q (use -list)", id)
		}
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		if e.Paper != "" {
			fmt.Printf("paper: %s\n\n", e.Paper)
		}
		var out io.Writer = os.Stdout
		if !*verboseFlag {
			out = &filterComments{w: os.Stdout}
		}
		if err := e.Run(cfg, out); err != nil {
			fatal("%s: %v", e.ID, err)
		}
		fmt.Println()
	}

	if *jsonFlag {
		rep := jsonReport{
			TakenUnixNano: time.Now().UnixNano(),
			GoMaxProcs:    runtime.GOMAXPROCS(0),
			NumCPU:        runtime.NumCPU(),
			Scale:         *scaleFlag,
			Threads:       threads,
			Experiments:   ids,
			Telemetry:     *teleFlag,
			Magazine:      *allocFlags.Magazine,
			Arenas:        *allocFlags.Arenas,
			DescStripes:   *allocFlags.DescStripes,
			DescAlgo:      descAlgo.String(),
			Adapt:         *allocFlags.Adapt,
			Offload:       *allocFlags.Offload,
			OffloadBatch:  *allocFlags.OffloadBatch,
			SampleRate:    *rateFlag,
			Results:       results,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal results: %v", err)
		}
		name := fmt.Sprintf("BENCH_%d.json", time.Now().Unix())
		if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
			fatal("write %s: %v", name, err)
		}
		fmt.Printf("wrote %d measurements to %s\n", len(results), name)
	}
}

// filterComments drops lines starting with "# " (per-measurement
// detail) unless -v is given.
type filterComments struct {
	w   io.Writer
	buf []byte
}

func (f *filterComments) Write(p []byte) (int, error) {
	f.buf = append(f.buf, p...)
	for {
		i := bytes.IndexByte(f.buf, '\n')
		if i < 0 {
			break
		}
		line := f.buf[:i+1]
		if !(len(line) >= 2 && line[0] == '#' && line[1] == ' ') {
			if _, err := f.w.Write(line); err != nil {
				return len(p), err
			}
		}
		f.buf = f.buf[i+1:]
	}
	return len(p), nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("thread count %d < 1", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchmal: "+format+"\n", args...)
	os.Exit(1)
}
