// Command mlfstress hammers the lock-free allocator with concurrent
// random malloc/free traffic (optionally with fault injection: threads
// killed mid-operation) and then validates the structural invariants
// of every superblock descriptor. Exit status is non-zero on any
// corruption or blocked progress.
//
//	mlfstress [-alloc lockfree] [-threads 8] [-ops 200000] [-kills 0]
//	          [-hyper] [-lifo] [-credits 64] [-seed 1] [-telemetry]
//	          [-events 16] [-magazine 0] [-arenas 0] [-descstripes 0]
//	          [-descalgo freelist|consttime] [-adapt] [-shadow]
//	          [-offload 0] [-offloadbatch 0]
//
// -alloc selects the backend under stress from the registry of package
// alloc (default lockfree, the paper's allocator, with the full knob
// set below). Any other registered backend runs the same churn through
// the generic interface; -shadow attaches the oracle the same way.
// Fault injection (-kills) is supported for lockfree and buddy — the
// two allocators with hookable kill points.
//
// With -telemetry, the lock-free observability layer is attached: the
// run ends with a contention/latency summary, and in fault-injection
// mode (-kills) the flight recorder's tail is dumped, showing the
// events leading up to each kill.
//
// With -adapt, the allocator is built with the runtime-mutable policy
// surface and an adaptive controller (internal/adapt) runs beside the
// stress traffic: in fault-injection mode the deterministic Exerciser
// policy churns magazine caps and stripe/arena bindings while victims
// die; otherwise the default hysteresis policy tunes the live run and
// its decision log is printed at the end. -adapt implies a (quiet)
// telemetry recorder even under -telemetry=false, since the controller
// needs sensors.
//
// With -shadow (requires building with -tags shadowheap), every
// malloc/free is mirrored into a shadow-heap oracle that detects
// double-free, invalid free, overlapping live blocks, and
// write-after-free via poison-on-free; the first violation aborts the
// run with the offending pointer, the allocating and freeing thread
// ids, and the flight recorder's tail.
//
// With -offload N, malloc/free traffic is routed through N dedicated
// allocation-core goroutines (internal/offload): each worker holds a
// per-class stash and submits batched refill/free requests over the
// MS queue. In fault-injection mode the kills target the allocation
// cores themselves — the run then verifies no batch was stranded.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/alloc"
	"repro/internal/adapt"
	"repro/internal/bench"
	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/offload"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/shadow"
	"repro/internal/sizeclass"
	"repro/internal/telemetry"
)

func main() {
	var (
		threads = flag.Int("threads", 8, "worker goroutines")
		ops     = flag.Int("ops", 200000, "operations per worker")
		kills   = flag.Int("kills", 0, "threads killed mid-operation (fault injection)")
		hyper   = flag.Bool("hyper", false, "enable the hyperblock layer")
		lifo    = flag.Bool("lifo", false, "LIFO partial lists")
		credits = flag.Int("credits", 0, "MAXCREDITS (default 64)")
		seed    = flag.Int64("seed", 1, "PRNG seed")
		tele    = flag.Bool("telemetry", true, "attach the telemetry layer (contention/latency summary, flight recorder)")
		events  = flag.Int("events", 16, "flight-recorder events to dump (telemetry mode)")
		name    = flag.String("alloc", "lockfree", "allocator backend under stress (see alloc.Names())")
		af      = bench.RegisterAllocFlags(flag.CommandLine)
		shadowF = flag.Bool("shadow", false, "attach the shadow-heap oracle (needs -tags shadowheap); first violation aborts the run")
	)
	flag.Parse()

	descAlgo, err := af.DescAlgo()
	if err != nil {
		fail("%v", err)
	}

	if *threads > runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(*threads)
	}
	if *shadowF && !shadow.Enabled {
		fmt.Fprintln(os.Stderr, "mlfstress: warning: -shadow requested but the binary was built without -tags shadowheap; the oracle is compiled out")
	}

	if *name != "lockfree" {
		runBackendStress(*name, *threads, *ops, *kills, *seed, *tele, *events, *shadowF)
		return
	}

	if *kills > 0 {
		runKillStress(*kills, *threads, *ops, *seed, *tele, *events, af, descAlgo, *shadowF)
		return
	}

	cfg, err := af.Apply(core.Config{
		Processors:  *threads,
		MaxCredits:  *credits,
		PartialLIFO: *lifo,
		Hyperblocks: *hyper,
	})
	if err != nil {
		fail("%v", err)
	}
	if *tele || cfg.Adapt {
		// -adapt needs the recorder as the controller's sensors even when
		// the summary is suppressed.
		cfg.Telemetry = core.NewRecorder(telemetry.Config{})
	}
	if *shadowF {
		// No OnViolation handler: the first violation panics with the
		// attribution line and the flight recorder's tail.
		cfg.Shadow = shadow.New(shadow.Config{
			Name:          "lockfree",
			VerifyOnReuse: true,
			Telemetry:     cfg.Telemetry,
			DumpEvents:    *events,
		})
	}
	a := core.New(cfg)
	fmt.Printf("mlfstress: %d threads x %d ops (hyper=%v lifo=%v credits=%d magazine=%d arenas=%d descstripes=%d descalgo=%s adapt=%v offload=%d shadow=%v)\n",
		*threads, *ops, *hyper, *lifo, cfg.MaxCredits, *af.Magazine, *af.Arenas,
		*af.DescStripes, descAlgo, cfg.Adapt, cfg.Offload.Cores, *shadowF && shadow.Enabled)

	var eng *offload.Engine
	if cfg.Offload.Cores > 0 {
		eng = offload.New(a)
	}

	var ctrl *adapt.Controller
	if cfg.Adapt {
		// Default hysteresis policy on a tight interval so a short stress
		// run still gives it several control steps.
		ctrl, err = adapt.New(a, adapt.Config{Interval: 5 * time.Millisecond})
		if err != nil {
			fail("adapt controller: %v", err)
		}
		ctrl.Start()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < *threads; g++ {
		wg.Add(1)
		go func(s int64) {
			defer wg.Done()
			var th interface {
				Malloc(uint64) (mem.Ptr, error)
				Free(mem.Ptr)
				Unregister()
			}
			if eng != nil {
				th = eng.Worker()
			} else {
				th = a.Thread()
			}
			rng := rand.New(rand.NewSource(s))
			var held []mem.Ptr
			for i := 0; i < *ops; i++ {
				if len(held) > 0 && (rng.Intn(2) == 0 || len(held) > 128) {
					k := rng.Intn(len(held))
					th.Free(held[k])
					held[k] = held[len(held)-1]
					held = held[:len(held)-1]
					continue
				}
				sz := uint64(8 << rng.Intn(9))
				if rng.Intn(100) == 0 {
					sz = 4096 + uint64(rng.Intn(16384))
				}
				p, err := th.Malloc(sz)
				if err != nil {
					fail("malloc(%d): %v", sz, err)
				}
				held = append(held, p)
			}
			for _, p := range held {
				th.Free(p)
			}
			// Return any magazine-cached blocks to the shared structures
			// so the post-run leak bound sees a quiescent heap.
			th.Unregister()
		}(*seed + int64(g))
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Quiesce the controller before the post-run structural checks.
	if ctrl != nil {
		ctrl.Stop()
	}
	if eng != nil {
		// The engine auto-quiesces at the last worker Unregister; Stop is
		// a belt-and-braces barrier so the post-run checks see no live
		// allocation cores or queued batches.
		eng.Stop()
		es := eng.Stats()
		fmt.Printf("offload: %d submits, %d refill batches (%d blocks), %d free batches (%d blocks), hit rate %.1f%%, %d fallbacks, queue depth %d\n",
			es.Submits, es.RefillBatches, es.RefillBlocks, es.FreeBatches,
			es.FreedBlocks, hitRate(es.StashHits, es.StashMisses), es.Fallbacks, es.QueueDepth)
		if es.QueueDepth != 0 || es.LiveCores != 0 {
			fail("offload engine not quiescent: depth=%d liveCores=%d", es.QueueDepth, es.LiveCores)
		}
	}

	s := a.Stats()
	fmt.Printf("done in %v: %d mallocs (%.0f ops/s), %d frees\n",
		elapsed.Round(time.Millisecond), s.Ops.Mallocs,
		float64(s.Ops.Mallocs+s.Ops.Frees)/elapsed.Seconds(), s.Ops.Frees)
	fmt.Printf("paths: active=%d partial=%d newSB=%d raceLoss=%d sbFreed=%d\n",
		s.Ops.FromActive, s.Ops.FromPartial, s.Ops.FromNewSB,
		s.Ops.NewSBRaceLoss, s.Ops.EmptySBFreed)
	fmt.Printf("descriptors: %d allocated, %d on freelist; heap max-live %d KiB\n",
		s.DescsAllocated, s.DescsOnFreelist, s.Heap.MaxLiveWords*8/1024)
	if *hyper {
		hs := a.HyperStats()
		fmt.Printf("hyperblocks: %d allocated, %d released, scavenged %d now\n",
			hs.HyperAllocs, hs.HyperReleases, a.Scavenge())
	}
	if rec := a.Telemetry(); rec != nil && *tele {
		fmt.Println()
		fmt.Print(rec.Snapshot().Text(0))
	}
	if ctrl != nil {
		fmt.Printf("adapt: %d control steps, %d decisions; magazine caps now %v\n",
			ctrl.Steps(), ctrl.DecisionCount(), a.MagazineCaps())
		for _, d := range ctrl.Decisions(8) {
			fmt.Printf("  %v\n", d)
		}
	}

	if o := a.ShadowOracle(); o != nil {
		if err := o.Err(); err != nil {
			fail("shadow oracle: %v", err)
		}
		fmt.Printf("shadow oracle: %d violations, %d blocks still modeled live\n",
			len(o.Violations()), o.LiveBlocks())
	}

	if s.Ops.Mallocs != s.Ops.Frees {
		fail("malloc/free imbalance: %d vs %d", s.Ops.Mallocs, s.Ops.Frees)
	}
	if err := a.CheckInvariants(0); err != nil {
		fail("invariant violation: %v", err)
	}
	// After all frees the allocator legitimately retains cached
	// superblocks: at most the Active and Partial superblock of every
	// processor heap (the paper's "each processor heap holds at most
	// two superblocks"), plus one partially-bumped hyperblock.
	live := a.Heap().Stats().LiveWords
	bound := uint64(sizeclass.NumClasses()) * uint64(*threads) * 2 * sizeclass.SuperblockWords
	if *hyper {
		bound += 64 * sizeclass.SuperblockWords
	}
	if live > bound {
		fail("leak: %d words live after all frees (retention bound %d)", live, bound)
	}
	fmt.Printf("invariants OK; retained superblock cache %d KiB (bound %d KiB)\n",
		live*8/1024, bound*8/1024)
}

// runBackendStress stresses a non-default backend through the generic
// alloc interface: same churn shape as the lock-free path, shadow
// oracle via Options.Shadow, and (for buddy) telemetry, fault
// injection via sched.RunBuddy, and a post-run invariant/coalescing
// check.
func runBackendStress(name string, threads, ops, kills int, seed int64, tele bool, events int, useShadow bool) {
	var rec *telemetry.Recorder
	if tele {
		rec = core.NewRecorder(telemetry.Config{})
	}

	if kills > 0 {
		if name != "buddy" {
			fail("-kills requires -alloc lockfree or buddy (no kill points in %q)", name)
		}
		fmt.Printf("mlfstress: fault injection — %d kills, %d survivors x %d ops (alloc=%s shadow=%v)\n",
			kills, threads, ops, name, useShadow && shadow.Enabled)
		plan := sched.BuddyPlan{
			Victims:        kills,
			Survivors:      threads,
			OpsPerSurvivor: ops,
			OpsBeforeKill:  200,
			Seed:           seed,
			Point:          -1,
			Shadow:         useShadow,
		}
		if rec != nil {
			plan.Telemetry = rec.Stripes()
		}
		res, err := sched.RunBuddy(plan)
		if rec != nil {
			fmt.Println()
			fmt.Print(rec.Snapshot().Text(events))
		}
		if err != nil {
			fail("survivors blocked: %v", err)
		}
		fmt.Printf("%v\n", res)
		if res.InvariantErr != nil {
			fail("invariant violation after kills: %v", res.InvariantErr)
		}
		if res.ShadowErr != nil {
			fail("shadow oracle after kills: %v", res.ShadowErr)
		}
		if res.ProbeErr != nil {
			fail("functional probe after kills: %v", res.ProbeErr)
		}
		fmt.Println("survivors made full progress; structure intact (bounded leak only)")
		return
	}

	a, err := alloc.New(name, alloc.Options{Processors: threads, Shadow: useShadow})
	if err != nil {
		fail("%v", err)
	}
	bud := alloc.BuddyFrom(a)
	if bud != nil && rec != nil {
		bud.SetTelemetry(rec.Stripes())
	}
	fmt.Printf("mlfstress: %d threads x %d ops (alloc=%s shadow=%v)\n",
		threads, ops, name, useShadow && shadow.Enabled)

	start := time.Now()
	var wg sync.WaitGroup
	var mallocs, frees atomic.Uint64
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(s int64) {
			defer wg.Done()
			th := a.NewThread()
			rng := rand.New(rand.NewSource(s))
			var held []mem.Ptr
			for i := 0; i < ops; i++ {
				if len(held) > 0 && (rng.Intn(2) == 0 || len(held) > 128) {
					k := rng.Intn(len(held))
					th.Free(held[k])
					held[k] = held[len(held)-1]
					held = held[:len(held)-1]
					frees.Add(1)
					continue
				}
				sz := uint64(8 << rng.Intn(9))
				if rng.Intn(100) == 0 {
					sz = 4096 + uint64(rng.Intn(16384))
				}
				p, err := th.Malloc(sz)
				if err != nil {
					fail("malloc(%d): %v", sz, err)
				}
				held = append(held, p)
				mallocs.Add(1)
			}
			for _, p := range held {
				th.Free(p)
				frees.Add(1)
			}
			if u, ok := th.(alloc.Unregisterer); ok {
				u.Unregister()
			}
		}(seed + int64(g))
	}
	wg.Wait()
	elapsed := time.Since(start)

	m, f := mallocs.Load(), frees.Load()
	fmt.Printf("done in %v: %d mallocs (%.0f ops/s), %d frees\n",
		elapsed.Round(time.Millisecond), m, float64(m+f)/elapsed.Seconds(), f)
	if m != f {
		fail("malloc/free imbalance: %d vs %d", m, f)
	}

	if bud != nil {
		bs := bud.Stats()
		fmt.Printf("buddy: %d trees x %d words, %d grows (%d lost races), %d hint hits, %d scans, %d/%d beyond-tree\n",
			bs.Trees, bs.TreeWords, bs.Grows, bs.GrowRaces, bs.HintHits, bs.Scans,
			bs.LargeMallocs, bs.LargeFrees)
		if err := bud.CheckInvariants(true); err != nil {
			fail("buddy invariant violation: %v", err)
		}
		bc := census.TakeBuddy(bud)
		if bc.CoalBits != 0 {
			fail("buddy: %d coalescing marks stranded at quiescence", bc.CoalBits)
		}
		if bc.ExternalFragRatio != 0 {
			fail("buddy: external frag %.3f after full drain, want 0 (coalescing incomplete)", bc.ExternalFragRatio)
		}
		fmt.Println("buddy invariants OK; forest fully coalesced")
	}
	if rec != nil {
		fmt.Println()
		fmt.Print(rec.Snapshot().Text(0))
	}
	if sa, ok := a.(alloc.ShadowAccessor); ok {
		if o := sa.ShadowOracle(); o != nil {
			if err := o.Err(); err != nil {
				fail("shadow oracle: %v", err)
			}
			fmt.Printf("shadow oracle: %d violations, %d blocks still modeled live\n",
				len(o.Violations()), o.LiveBlocks())
		}
	}
}

func runKillStress(kills, threads, ops int, seed int64, tele bool, events int, af *bench.AllocFlags, descAlgo pool.Algo, useShadow bool) {
	fmt.Printf("mlfstress: fault injection — %d kills, %d survivors x %d ops (magazine=%d arenas=%d descstripes=%d descalgo=%s adapt=%v offload=%d shadow=%v)\n",
		kills, threads, ops, *af.Magazine, *af.Arenas, *af.DescStripes,
		descAlgo, *af.Adapt, *af.Offload, useShadow && shadow.Enabled)
	var rec *telemetry.Recorder
	if tele {
		rec = core.NewRecorder(telemetry.Config{})
	}
	res, err := sched.Run(sched.Plan{
		Victims:        kills,
		Survivors:      threads,
		OpsPerSurvivor: ops,
		OpsBeforeKill:  200,
		Seed:           seed,
		Point:          -1,
		Magazine:       *af.Magazine,
		Arenas:         *af.Arenas,
		DescStripes:    *af.DescStripes,
		DescAlgo:       descAlgo,
		Adapt:          *af.Adapt,
		Offload:        *af.Offload,
		OffloadBatch:   *af.OffloadBatch,
		Telemetry:      rec,
		Shadow:         useShadow,
	})
	if rec != nil {
		// Dump even when survivors blocked: the flight recorder's tail
		// is the post-mortem, showing each victim's final hook firings.
		fmt.Println()
		fmt.Print(rec.Snapshot().Text(events))
	}
	if err != nil {
		fail("survivors blocked: %v", err)
	}
	fmt.Printf("%v\n", res)
	if *af.Offload > 0 {
		fmt.Printf("offload: %d core kills, %d blocks adopted, %d fallbacks, %d stranded\n",
			res.OffloadCoreKills, res.OffloadAdopted, res.OffloadFallbacks, res.OffloadStranded)
		if res.OffloadStranded != 0 {
			fail("offload: %d batches stranded after kills", res.OffloadStranded)
		}
	}
	if *af.Adapt {
		fmt.Printf("adapt: %d control steps, %d decisions while victims died\n",
			res.AdaptSteps, res.AdaptDecisions)
	}
	if res.InvariantErr != nil {
		fail("invariant violation after kills: %v", res.InvariantErr)
	}
	if res.ShadowErr != nil {
		fail("shadow oracle after kills: %v", res.ShadowErr)
	}
	fmt.Println("survivors made full progress; structure intact (bounded leak only)")
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mlfstress: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
